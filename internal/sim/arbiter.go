package sim

import "dws/internal/arbiter"

// The simulator's model of QoS core arbitration (Config.ArbiterPeriodUS):
// the machine runs the very same internal/arbiter.Arbiter the live
// runtime uses, ticked as a machine-level event, feeding it each
// program's simulated demand (queued tasks, active workers) and declared
// weight. Published entitlements land in the in-memory core table, and
// regrabHome/coordWakeDWS derive the home block from there — so the sim
// and live substrates disagree only in their demand measurements, never
// in arbitration arithmetic.

// homeOf returns p's current home block: the entitled block from the core
// table once the arbiter has published (entitlement epoch > 0), the
// static even split otherwise. Mirrors rt.Program.homeCores so both
// substrates reclaim against the same elastic home.
//
// On a multi-socket machine the entitled block is the placed one —
// arbiter.Place recomputed from the published size vector, identical to
// what the live runtime and schedcheck derive — so entitled blocks pack
// within a socket whenever they fit. Static homes stay the flat split.
func (m *Machine) homeOf(p *Program) []int {
	if m.table == nil {
		return p.home
	}
	if !m.topo.Flat() && !m.cfg.NoLocality {
		if m.table.EntitlementEpoch() > 0 {
			return arbiter.PlacedFor(m.topo, m.table.Entitlements(), p.idx)
		}
		return p.home
	}
	if ent := m.table.EntitledCores(p.idx); ent != nil {
		return ent
	}
	return p.home
}

// weightOf returns p's arbitration weight (1 without Config.Weights).
func (m *Machine) weightOf(p *Program) float64 {
	if m.cfg.Weights == nil {
		return 1
	}
	return m.cfg.Weights[p.idx]
}

// scheduleArbiter arms the next machine-level arbiter tick.
func (m *Machine) scheduleArbiter() {
	m.after(m.cfg.ArbiterPeriodUS, func() { m.arbiterTick() })
}

// arbiterTick assembles one round of demand inputs (in program order, for
// determinism) and lets the arbiter decide. The tick charges no simulated
// cost: arbitration is machine-level bookkeeping, not program work, so an
// equal-weights arbiter run stays bit-identical to a static one.
func (m *Machine) arbiterTick() {
	if m.stopped {
		return
	}
	m.scheduleArbiter()
	inputs := make([]arbiter.Input, 0, len(m.progs))
	for _, p := range m.progs {
		inputs = append(inputs, arbiter.Input{
			PID:    p.id,
			Weight: m.weightOf(p),
			NB:     p.queuedTasks(),
			NA:     p.active,
		})
	}
	for _, d := range m.arb.Tick(inputs) {
		m.trace("p%d entitle %d->%d (%s epoch=%d)",
			d.PID, int(d.Old), int(d.New), d.Trigger, d.Epoch)
	}
}

// Entitlements returns the core table's current entitlement vector (one
// entry per program slot), or nil for machines without a table.
func (m *Machine) Entitlements() []int32 {
	if m.table == nil {
		return nil
	}
	return m.table.Entitlements()
}
