package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// TestWallForWarm: with a warm cache, wall time is work × warm rate.
func TestWallForWarm(t *testing.T) {
	if got := wallFor(100, 1000, 500, 1.0, 2.0); got != 100 {
		t.Fatalf("warm wall = %v, want 100", got)
	}
	if got := wallFor(100, 1000, 500, 1.5, 2.0); got != 150 {
		t.Fatalf("warm wall with LLC = %v, want 150", got)
	}
}

// TestWallForCold: fully inside the cold window, wall time is work × cold
// rate.
func TestWallForCold(t *testing.T) {
	// coldUntil far away: 100 work at rate 1 × factor 2 = 200 wall.
	if got := wallFor(100, 0, 1_000_000, 1.0, 2.0); got != 200 {
		t.Fatalf("cold wall = %v, want 200", got)
	}
}

// TestWallForStraddle: a segment straddling the cold boundary pays the
// cold rate only for the cold part.
func TestWallForStraddle(t *testing.T) {
	// Cold window of 100µs wall at rate 2 covers 50 work; the remaining
	// 50 work runs warm: total 100 + 50 = 150.
	if got := wallFor(100, 0, 100, 1.0, 2.0); got != 150 {
		t.Fatalf("straddle wall = %v, want 150", got)
	}
}

// TestWorkForInverse: workFor inverts wallFor at the endpoints.
func TestWorkForInverse(t *testing.T) {
	cases := []struct {
		work            float64
		start, coldTill int64
		warm, cold      float64
	}{
		{100, 1000, 500, 1.0, 2.0},
		{100, 0, 1_000_000, 1.0, 2.0},
		{100, 0, 100, 1.0, 2.0},
		{1234, 50, 400, 1.3, 1.8},
	}
	for _, c := range cases {
		wall := wallFor(c.work, c.start, c.coldTill, c.warm, c.cold)
		got := workFor(int64(math.Ceil(wall)), c.start, c.coldTill, c.warm, c.cold)
		if got < c.work-1e-6 {
			t.Fatalf("workFor(wallFor(%v)) = %v", c.work, got)
		}
	}
}

// TestPropertyRates: wallFor is monotone in work, never less than warm
// execution, and workFor never exceeds the work implied by elapsed time
// at the warm rate.
func TestPropertyRates(t *testing.T) {
	f := func(workRaw uint16, startRaw, coldRaw uint16, warmRaw, coldFRaw uint8) bool {
		work := float64(workRaw%5000) + 1
		start := int64(startRaw)
		coldUntil := int64(coldRaw)
		warm := 1 + float64(warmRaw%100)/100   // [1, 2)
		coldF := 1 + float64(coldFRaw%200)/100 // [1, 3)

		wall := wallFor(work, start, coldUntil, warm, coldF)
		if wall < work*warm-1e-9 {
			return false // faster than warm execution is impossible
		}
		if wall > work*warm*coldF+1e-9 {
			return false // slower than fully-cold execution is impossible
		}
		bigger := wallFor(work+1, start, coldUntil, warm, coldF)
		if bigger < wall {
			return false // monotone in work
		}
		// Inverse bounds.
		back := workFor(int64(wall), start, coldUntil, warm, coldF)
		return back <= work+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroWork: zero work takes zero wall time and vice versa.
func TestZeroWork(t *testing.T) {
	if wallFor(0, 0, 100, 1, 2) != 0 {
		t.Fatal("zero work should take zero wall")
	}
	if workFor(0, 0, 100, 1, 2) != 0 {
		t.Fatal("zero wall should do zero work")
	}
	if workFor(-5, 0, 100, 1, 2) != 0 {
		t.Fatal("negative elapsed should do zero work")
	}
}

// TestEventOrdering: the event heap pops by (time, seq).
func TestEventOrdering(t *testing.T) {
	m := &Machine{cfg: DefaultConfig()}
	var got []int
	m.schedule(50, func() { got = append(got, 3) })
	m.schedule(10, func() { got = append(got, 1) })
	m.schedule(10, func() { got = append(got, 2) }) // same time, later seq
	for len(m.events) > 0 {
		ev := m.events[0]
		// Manual pop via container/heap semantics happens in Run; emulate.
		n := len(m.events)
		m.events.Swap(0, n-1)
		e := m.events[n-1]
		m.events = m.events[:n-1]
		if n > 1 {
			down(&m.events)
		}
		_ = ev
		m.now = e.at
		e.fn()
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// down restores the heap property after a root removal (test helper that
// mirrors container/heap.Pop's sift-down).
func down(h *eventHeap) {
	i := 0
	n := h.Len()
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.Less(l, smallest) {
			smallest = l
		}
		if r < n && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.Swap(i, smallest)
		i = smallest
	}
}

// TestScheduleClampsToNow: events cannot be scheduled in the past.
func TestScheduleClampsToNow(t *testing.T) {
	m := &Machine{cfg: DefaultConfig()}
	m.now = 100
	m.schedule(50, func() {})
	if m.events[0].at != 100 {
		t.Fatalf("event at %d, want clamped to 100", m.events[0].at)
	}
}
