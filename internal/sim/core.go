package sim

// Core is one simulated hardware core: a round-robin run queue of resident
// runnable workers, a scheduling-quantum tick, and private-cache warmth
// state.
type Core struct {
	id     int
	socket int

	// runq holds the resident runnable workers; runq[0] is the scheduled
	// one whenever cur != nil.
	runq []*Worker
	cur  *Worker

	quantumArmed bool
	lastRun      *Worker

	// cacheProg is the program whose data is warm in this core's private
	// caches; coldUntil is when the current occupant finishes refilling.
	cacheProg int32
	coldUntil int64

	busyUS    int64 // wall time with a worker scheduled (accounting)
	busySince int64 // valid while cur != nil
}

// dispatch schedules the head of the run queue, if any. Pre: c.cur == nil.
func (m *Machine) dispatch(c *Core) {
	if c.cur != nil {
		panic("sim: dispatch with a worker already scheduled")
	}
	if len(c.runq) == 0 {
		return
	}
	w := c.runq[0]
	c.cur = w
	c.busySince = m.now
	if c.lastRun != w {
		w.pendingLatency += m.cfg.CtxSwitchUS
		c.lastRun = w
	}
	m.armQuantum(c)
	if w.cur != nil {
		w.state = wRunning
		m.scheduleSegment(w)
		return
	}
	w.state = wRunning
	m.getWork(w)
}

// unschedule accounts for the current worker's core occupancy and clears
// cur. It does not touch the run queue.
func (c *Core) unschedule(now int64) {
	if c.cur != nil {
		c.busyUS += now - c.busySince
		c.cur = nil
	}
}

// armQuantum starts the periodic scheduler tick for a multi-occupant core.
// The tick is per-core and keeps firing while the core stays shared.
func (m *Machine) armQuantum(c *Core) {
	if c.quantumArmed || len(c.runq) < 2 {
		return
	}
	c.quantumArmed = true
	m.after(m.cfg.QuantumUS, func() { m.quantumFire(c) })
}

// quantumFire preempts the scheduled worker and rotates the run queue.
func (m *Machine) quantumFire(c *Core) {
	c.quantumArmed = false
	if len(c.runq) < 2 {
		return
	}
	if c.cur != nil {
		m.preempt(c.cur)
		c.unschedule(m.now)
	}
	// Rotate: head to tail.
	c.runq = append(c.runq[1:], c.runq[0])
	m.dispatch(c)
}

// preempt stops w's current activity, folding partial progress back into
// the worker so it can resume later. w must be its core's scheduled worker.
func (m *Machine) preempt(w *Worker) {
	switch w.state {
	case wRunning:
		if w.cur != nil {
			m.absorbProgress(w)
		}
	case wSpinning:
		m.endSpin(w)
	}
	w.gen++
	w.state = wReady
}

// removeFromRunq deletes w from its core's run queue (any position).
func (c *Core) removeFromRunq(w *Worker) {
	for i, x := range c.runq {
		if x == w {
			c.runq = append(c.runq[:i], c.runq[i+1:]...)
			return
		}
	}
	panic("sim: worker not in run queue")
}

// absorbProgress updates w.remaining for the wall time elapsed since the
// segment was scheduled, using the rate parameters frozen at schedule time.
func (m *Machine) absorbProgress(w *Worker) {
	elapsed := m.now - w.segEffStart
	if elapsed <= 0 {
		// The latency prefix was not even consumed; carry the rest over.
		w.pendingLatency = -elapsed
		return
	}
	w.pendingLatency = 0
	done := workFor(elapsed, w.segEffStart, w.segColdUntil, w.segWarmRate, w.segColdFactor)
	w.remaining -= done
	if w.remaining < 0 {
		w.remaining = 0
	}
	w.prog.stats.WorkUS += done
}

// wallFor converts work µs into wall µs for a segment starting at start
// with the given frozen cache parameters.
func wallFor(work float64, start, coldUntil int64, warmRate, coldFactor float64) float64 {
	if work <= 0 {
		return 0
	}
	coldRate := warmRate * coldFactor
	if start >= coldUntil {
		return work * warmRate
	}
	coldWall := float64(coldUntil - start)
	coldWork := coldWall / coldRate
	if work <= coldWork {
		return work * coldRate
	}
	return coldWall + (work-coldWork)*warmRate
}

// workFor is the inverse of wallFor: how much work fits in elapsed wall µs.
func workFor(elapsed int64, start, coldUntil int64, warmRate, coldFactor float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	coldRate := warmRate * coldFactor
	if start >= coldUntil {
		return float64(elapsed) / warmRate
	}
	coldWall := coldUntil - start
	if elapsed <= coldWall {
		return float64(elapsed) / coldRate
	}
	return float64(coldWall)/coldRate + float64(elapsed-coldWall)/warmRate
}
