package sim

import (
	"errors"
	"reflect"
	"testing"

	"dws/internal/task"
)

func fedGraphs(n int) []*task.Graph {
	out := make([]*task.Graph, n)
	for i := range out {
		out[i] = &task.Graph{Name: "t" + string(rune('a'+i)), Root: task.Leaf(1), MemIntensity: 0.5}
	}
	return out
}

// fedStream interleaves per-tenant uniform streams into one global stream.
func fedStream(tenants, perTenant int, gapUS, deadlineUS int64) []FedJob {
	var jobs []FedJob
	for k := 0; k < perTenant; k++ {
		for tn := 0; tn < tenants; tn++ {
			jobs = append(jobs, FedJob{
				Tenant:     tn,
				AtUS:       int64(k)*gapUS + int64(tn)*100,
				Graph:      &task.Graph{Name: "job", Root: smallRoot()},
				DeadlineUS: deadlineUS,
			})
		}
	}
	return jobs
}

// roundRobinPref homes tenant tn on shard tn%K and walks the rest in
// ring order, the shape the router's Preference produces.
func roundRobinPref(tenants, shards int) [][]int {
	pref := make([][]int, tenants)
	for tn := range pref {
		for s := 0; s < shards; s++ {
			pref[tn] = append(pref[tn], (tn+s)%shards)
		}
	}
	return pref
}

func smallFedCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.SocketSize = 4
	cfg.Seed = 11
	return cfg
}

// TestFederationDeterminism: identical options give a bit-identical
// outcome log, spill ledger, and end time — including under random spill,
// whose RNG is seeded from the config.
func TestFederationDeterminism(t *testing.T) {
	for _, pol := range []SpillPolicy{SpillNone, SpillRandom, SpillNext} {
		run := func() *FedResults {
			res, err := RunFederation(FedOpts{
				Cfg:       smallFedCfg(),
				Shards:    3,
				Programs:  fedGraphs(3),
				Jobs:      fedStream(3, 30, 2_000, 50_000),
				Pref:      roundRobinPref(3, 3),
				Spill:     pol,
				QueueCap:  2,
				Admission: &AdmissionOpts{GlobalCap: 4, EarlyReject: true},
				HorizonUS: 60_000_000_000,
			})
			if err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
			t.Fatalf("%v: outcomes differ between identical replays", pol)
		}
		if !reflect.DeepEqual(a.Spills, b.Spills) {
			t.Fatalf("%v: spill ledgers differ between identical replays", pol)
		}
		if a.EndTimeUS != b.EndTimeUS {
			t.Fatalf("%v: end times differ: %d vs %d", pol, a.EndTimeUS, b.EndTimeUS)
		}
	}
}

// TestFederationNoSpillMatchesIndependentShards is the federation
// regression anchor: under no-spill, K federated shards are K independent
// machines, so every tenant's (status, done-time) sequence must be
// bit-identical to replaying its home shard alone with RunOpen using the
// same per-shard config (Seed+s·101) and the same tenant set.
func TestFederationNoSpillMatchesIndependentShards(t *testing.T) {
	const shards, tenants, perTenant = 3, 3, 25
	graphs := fedGraphs(tenants)
	jobs := fedStream(tenants, perTenant, 3_000, 60_000)
	pref := roundRobinPref(tenants, shards)

	fed, err := RunFederation(FedOpts{
		Cfg:       smallFedCfg(),
		Shards:    shards,
		Programs:  graphs,
		Jobs:      jobs,
		Pref:      pref,
		Spill:     SpillNone,
		QueueCap:  3,
		HorizonUS: 60_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		status JobStatus
		done   int64
	}
	fedSeq := make([][]key, tenants)
	for _, o := range fed.Outcomes {
		if o.Spills != 0 {
			t.Fatalf("no-spill replay recorded %d spills on job %d", o.Spills, o.Index)
		}
		if o.Shard != pref[o.Tenant][0] {
			t.Fatalf("job %d resolved on shard %d, home is %d", o.Index, o.Shard, pref[o.Tenant][0])
		}
		fedSeq[o.Tenant] = append(fedSeq[o.Tenant], key{o.Status, o.DoneUS})
	}
	if len(fed.Spills) != 0 {
		t.Fatalf("no-spill replay has a spill ledger: %+v", fed.Spills)
	}

	// Replay each shard alone: all tenants registered (the federation
	// hosts every tenant on every shard), job streams only for the homed.
	for s := 0; s < shards; s++ {
		cfg := smallFedCfg()
		cfg.Seed += int64(s) * 101
		m := mustMachine(t, cfg, graphs)
		streams := make([][]Job, tenants)
		for _, j := range jobs {
			if pref[j.Tenant][0] != s {
				continue
			}
			streams[j.Tenant] = append(streams[j.Tenant],
				Job{AtUS: j.AtUS, Graph: j.Graph, DeadlineUS: j.DeadlineUS})
		}
		res, err := m.RunOpen(OpenOpts{Jobs: streams, QueueCap: 3, HorizonUS: 60_000_000_000})
		if err != nil {
			t.Fatalf("shard %d solo: %v", s, err)
		}
		solo := make([][]key, tenants)
		for _, o := range res.Jobs {
			solo[o.Prog] = append(solo[o.Prog], key{o.Status, o.DoneUS})
		}
		for tn := 0; tn < tenants; tn++ {
			if pref[tn][0] != s {
				continue
			}
			if !reflect.DeepEqual(fedSeq[tn], solo[tn]) {
				t.Errorf("shard %d tenant %d: federated %v, solo %v", s, tn, fedSeq[tn], solo[tn])
			}
		}
	}
}

// TestFederationNextPreferredBeatsNoSpill: every tenant homes on shard 0
// while shards 1 and 2 idle; spilling the overflow must complete strictly
// more jobs than letting shard 0 reject them.
func TestFederationNextPreferredBeatsNoSpill(t *testing.T) {
	const tenants = 2
	graphs := fedGraphs(tenants)
	pref := make([][]int, tenants)
	for tn := range pref {
		pref[tn] = []int{0, 1, 2}
	}
	jobs := fedStream(tenants, 40, 500, 0) // a storm: far beyond one shard
	run := func(pol SpillPolicy) int {
		res, err := RunFederation(FedOpts{
			Cfg:       smallFedCfg(),
			Shards:    3,
			Programs:  graphs,
			Jobs:      jobs,
			Pref:      pref,
			Spill:     pol,
			QueueCap:  2,
			HorizonUS: 60_000_000_000,
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		ok := 0
		for _, o := range res.Outcomes {
			if o.Status == JobOK {
				ok++
			}
		}
		if pol != SpillNone {
			spilled := false
			for _, o := range res.Outcomes {
				if o.Spills > 0 {
					spilled = true
					if o.Status == JobOK && o.Shard == 0 {
						t.Errorf("%v: job %d spilled yet resolved on its home", pol, o.Index)
					}
				}
			}
			if !spilled {
				t.Fatalf("%v: overload storm produced no spills", pol)
			}
		}
		return ok
	}
	okNone := run(SpillNone)
	okNext := run(SpillNext)
	if okNext <= okNone {
		t.Fatalf("next-preferred completed %d jobs, no-spill %d: spilling to idle shards must win", okNext, okNone)
	}
}

// TestFederationSpillLatencyCharged: a spilled job cannot finish before
// its redirect delay has elapsed, and raising the delay never helps.
func TestFederationSpillLatencyCharged(t *testing.T) {
	const latUS = 40_000
	graphs := fedGraphs(1)
	pref := [][]int{{0, 1}}
	jobs := fedStream(1, 30, 500, 120_000)
	run := func(mat [][]int64) *FedResults {
		res, err := RunFederation(FedOpts{
			Cfg:            smallFedCfg(),
			Shards:         2,
			Programs:       graphs,
			Jobs:           jobs,
			Pref:           pref,
			Spill:          SpillNext,
			SpillLatencyUS: mat,
			QueueCap:       1,
			HorizonUS:      60_000_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow := run([][]int64{{0, latUS}, {latUS, 0}})
	spilledRan := 0
	for _, o := range slow.Outcomes {
		if o.Spills > 0 && o.DoneUS >= 0 {
			spilledRan++
			if o.DoneUS < o.AtUS+latUS {
				t.Fatalf("job %d spilled yet finished %dµs after arrival, before the %dµs hop",
					o.Index, o.DoneUS-o.AtUS, latUS)
			}
		}
	}
	if spilledRan == 0 {
		t.Fatal("no spilled job ran; the latency charge is untested")
	}
	// Deadlines are measured from the original arrival across hops: the
	// zero-latency run must meet at least as many as the slow one.
	fast := run(nil)
	okOf := func(r *FedResults) int {
		n := 0
		for _, o := range r.Outcomes {
			if o.Status == JobOK {
				n++
			}
		}
		return n
	}
	if okOf(fast) < okOf(slow) {
		t.Fatalf("zero-latency spill completed %d < %d with %dµs hops", okOf(fast), okOf(slow), latUS)
	}
}

// TestFederationBudgetBoundsHops: no outcome may record more hops than
// the budget, and a budget of zero rounds up to the default 2.
func TestFederationBudgetBoundsHops(t *testing.T) {
	graphs := fedGraphs(2)
	pref := roundRobinPref(2, 4)
	jobs := fedStream(2, 60, 300, 0)
	for _, budget := range []int{1, 3} {
		res, err := RunFederation(FedOpts{
			Cfg:         smallFedCfg(),
			Shards:      4,
			Programs:    graphs,
			Jobs:        jobs,
			Pref:        pref,
			Spill:       SpillRandom,
			SpillBudget: budget,
			QueueCap:    1,
			HorizonUS:   60_000_000_000,
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		maxHops := 0
		for _, o := range res.Outcomes {
			if o.Spills > maxHops {
				maxHops = o.Spills
			}
		}
		if maxHops > budget {
			t.Fatalf("budget %d: a job took %d hops", budget, maxHops)
		}
		if maxHops == 0 {
			t.Fatalf("budget %d: storm produced no spills", budget)
		}
	}
}

// TestFederationShedSpills: under a WFQ global cap the home shard sheds
// admitted backlog; those jobs must re-route with reason "shed" in the
// ledger rather than silently dying.
func TestFederationShedSpills(t *testing.T) {
	graphs := fedGraphs(2)
	pref := [][]int{{0, 1}, {0, 1}}
	res, err := RunFederation(FedOpts{
		Cfg:      smallFedCfg(),
		Shards:   2,
		Programs: graphs,
		Jobs:     fedStream(2, 40, 400, 0),
		Pref:     pref,
		Spill:    SpillNext,
		QueueCap: 8,
		// Asymmetric weights: the heavy tenant's arrivals displace the light
		// tenant's queued tail at the global cap.
		Admission: &AdmissionOpts{GlobalCap: 3, Weights: []float64{10, 1}},
		HorizonUS: 60_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	shedEdges := int64(0)
	for _, sp := range res.Spills {
		if sp.Reason == "shed" {
			shedEdges += sp.Count
		}
	}
	if shedEdges == 0 {
		t.Fatal("global-cap storm spilled no shed jobs")
	}
	// Every job still resolves exactly once.
	for i, o := range res.Outcomes {
		if o.Index != i {
			t.Fatalf("outcome %d indexed %d", i, o.Index)
		}
	}
}

// TestFederationEarlyRejectTerminal: early rejections never spill — the
// prediction priced the tenant's own backlog, which follows it everywhere.
func TestFederationEarlyRejectTerminal(t *testing.T) {
	graphs := fedGraphs(1)
	res, err := RunFederation(FedOpts{
		Cfg:      smallFedCfg(),
		Shards:   2,
		Programs: graphs,
		// Tight deadlines against a saturating stream: early rejection fires.
		Jobs:      fedStream(1, 50, 300, 2_000),
		Pref:      [][]int{{0, 1}},
		Spill:     SpillNext,
		QueueCap:  8,
		Admission: &AdmissionOpts{EarlyReject: true},
		HorizonUS: 60_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	early := 0
	for _, o := range res.Outcomes {
		if o.Status == JobEarlyReject {
			early++
			if o.Spills != 0 {
				t.Fatalf("job %d early-rejected after %d spill hops", o.Index, o.Spills)
			}
			if o.Shard != 0 {
				t.Fatalf("job %d early-rejected on shard %d, not its home", o.Index, o.Shard)
			}
		}
	}
	if early == 0 {
		t.Fatal("tight-deadline storm produced no early rejections")
	}
}

// TestFederationValidation: malformed options fail loudly.
func TestFederationValidation(t *testing.T) {
	graphs := fedGraphs(1)
	base := func() FedOpts {
		return FedOpts{
			Cfg:      smallFedCfg(),
			Shards:   2,
			Programs: graphs,
			Jobs:     fedStream(1, 2, 1_000, 0),
			Pref:     [][]int{{0, 1}},
		}
	}
	cases := []struct {
		name string
		mut  func(*FedOpts)
	}{
		{"no shards", func(o *FedOpts) { o.Shards = 0 }},
		{"no jobs", func(o *FedOpts) { o.Jobs = nil }},
		{"pref count", func(o *FedOpts) { o.Pref = nil }},
		{"empty pref", func(o *FedOpts) { o.Pref = [][]int{{}} }},
		{"pref out of range", func(o *FedOpts) { o.Pref = [][]int{{0, 2}} }},
		{"pref repeats", func(o *FedOpts) { o.Pref = [][]int{{0, 0}} }},
		{"latency rows", func(o *FedOpts) { o.SpillLatencyUS = [][]int64{{0, 0}} }},
		{"latency ragged", func(o *FedOpts) { o.SpillLatencyUS = [][]int64{{0}, {0, 0}} }},
		{"latency negative", func(o *FedOpts) { o.SpillLatencyUS = [][]int64{{0, -1}, {0, 0}} }},
		{"bad tenant", func(o *FedOpts) { o.Jobs[0].Tenant = 9 }},
		{"negative time", func(o *FedOpts) { o.Jobs[0].AtUS = -1 }},
	}
	for _, tc := range cases {
		o := base()
		tc.mut(&o)
		if _, err := RunFederation(o); !errors.Is(err, ErrBadConfig) && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestParseSpillPolicy: names round-trip and junk is refused.
func TestParseSpillPolicy(t *testing.T) {
	for name, want := range map[string]SpillPolicy{
		"":                     SpillNone,
		"none":                 SpillNone,
		"no-spill":             SpillNone,
		"random":               SpillRandom,
		"random-spill":         SpillRandom,
		"next":                 SpillNext,
		"next-preferred":       SpillNext,
		"next-preferred-spill": SpillNext,
	} {
		got, err := ParseSpillPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseSpillPolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSpillPolicy("sideways"); err == nil {
		t.Error("junk policy accepted")
	}
	for _, p := range []SpillPolicy{SpillNone, SpillRandom, SpillNext} {
		rt, err := ParseSpillPolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("%v does not round-trip through String", p)
		}
	}
}
