package sim

import "container/heap"

// event is one scheduled action. Events with equal timestamps fire in
// scheduling order (seq), which keeps simulations deterministic.
type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// schedule enqueues fn to run at absolute time at (clamped to now).
func (m *Machine) schedule(at int64, fn func()) {
	if at < m.now {
		at = m.now
	}
	m.seq++
	heap.Push(&m.events, &event{at: at, seq: m.seq, fn: fn})
}

// after enqueues fn to run delay µs from now.
func (m *Machine) after(delay int64, fn func()) {
	m.schedule(m.now+delay, fn)
}
