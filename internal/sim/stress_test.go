package sim

import (
	"math/rand"
	"testing"

	"dws/internal/task"
)

// randomGraph builds a random valid fork-join graph whose total work is
// bounded, covering deep recursion, wide phases and serial lumps.
func randomGraph(rng *rand.Rand, name string) *task.Graph {
	var build func(depth int) *task.Node
	build = func(depth int) *task.Node {
		if depth == 0 || rng.Intn(3) == 0 {
			return task.Leaf(int64(rng.Intn(3000) + 50))
		}
		switch rng.Intn(3) {
		case 0: // fork
			n := rng.Intn(4) + 2
			children := make([]*task.Node, n)
			for i := range children {
				children[i] = build(depth - 1)
			}
			return task.Fork(int64(rng.Intn(200)), int64(rng.Intn(500)), children...)
		case 1: // barriered phases
			phases := rng.Intn(4) + 1
			stages := make([]task.Stage, phases)
			for i := range stages {
				cn := rng.Intn(6) + 1
				children := make([]*task.Node, cn)
				for j := range children {
					children[j] = build(depth - 1)
				}
				stages[i] = task.Stage{Work: int64(rng.Intn(300)), Children: children}
			}
			return task.Phases(stages...)
		default: // serial chain
			return task.Chain(build(depth-1), build(depth-1))
		}
	}
	return &task.Graph{
		Name:         name,
		Root:         build(3),
		MemIntensity: rng.Float64(),
	}
}

// TestStressRandomGraphs fuzzes the machine: random graphs, random
// policies, random program counts and arrivals, with the invariant
// checker on. Every configuration must terminate with the requested runs.
func TestStressRandomGraphs(t *testing.T) {
	policies := []Policy{ABP, EP, DWS, DWSNC, BWS}
	for iter := 0; iter < 40; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		nProgs := rng.Intn(3) + 1
		graphs := make([]*task.Graph, nProgs)
		for i := range graphs {
			graphs[i] = randomGraph(rng, "g")
			if err := task.Validate(graphs[i]); err != nil {
				t.Fatalf("iter %d: invalid random graph: %v", iter, err)
			}
		}
		cfg := debugConfig(policies[rng.Intn(len(policies))])
		cfg.Cores = []int{2, 4, 8, 16}[rng.Intn(4)]
		cfg.SocketSize = cfg.Cores / (rng.Intn(2) + 1)
		cfg.TSleep = 0
		cfg.Seed = int64(iter)
		cfg.WorkSharing = rng.Intn(4) == 0
		if nProgs > cfg.Cores {
			nProgs = cfg.Cores
			graphs = graphs[:nProgs]
		}
		var arrivals []int64
		if rng.Intn(2) == 0 {
			arrivals = make([]int64, nProgs)
			for i := 1; i < nProgs; i++ {
				arrivals[i] = int64(rng.Intn(20_000))
			}
		}
		m, err := NewMachine(cfg, graphs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		res, err := m.Run(RunOpts{
			TargetRuns: rng.Intn(2) + 1,
			HorizonUS:  600_000_000_000,
			ArrivalsUS: arrivals,
		})
		if err != nil {
			t.Fatalf("iter %d (%v, k=%d, m=%d, sharing=%v): %v",
				iter, cfg.Policy, cfg.Cores, nProgs, cfg.WorkSharing, err)
		}
		for _, p := range res.Programs {
			if p.Runs() < 1 {
				t.Fatalf("iter %d: a program completed no runs", iter)
			}
		}
	}
}
