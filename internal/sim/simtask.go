package sim

import "dws/internal/task"

// simTask is the per-run execution state of one task.Node. Graphs are
// immutable; a fresh simTask tree grows lazily as nodes are spawned, so
// the same Graph can be executed repeatedly (the Fig. 3 methodology).
type simTask struct {
	node    *task.Node
	stage   int      // index of the stage currently executing or joining
	pending int      // unfinished children of the current stage
	parent  *simTask // nil for the root
}

// stageWork returns the serial work of the current stage in µs.
func (t *simTask) stageWork() int64 {
	return t.node.Stages[t.stage].Work
}

// stageChildren returns the children spawned by the current stage.
func (t *simTask) stageChildren() []*task.Node {
	return t.node.Stages[t.stage].Children
}
