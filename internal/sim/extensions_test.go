package sim

import (
	"strings"
	"testing"

	"dws/internal/task"
)

// TestBWSCompletes: the BWS baseline runs mixed workloads to completion
// with the invariant checker on.
func TestBWSCompletes(t *testing.T) {
	m := mustMachine(t, debugConfig(BWS), []*task.Graph{wideGraph(), narrowGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Programs {
		if p.Runs() < 3 {
			t.Fatalf("%s: %d runs", p.Name, p.Runs())
		}
		// BWS is a time-sharing policy: no DWS machinery.
		if p.Stats.Sleeps != 0 || p.Stats.Claims != 0 {
			t.Fatalf("%s: DWS machinery active under BWS: %+v", p.Name, p.Stats)
		}
	}
}

// TestBWSBeatsABPForTheBusyProgram: with one workless-prone co-runner,
// BWS's directed yield gives the busy program more of each core than
// ABP's spinning thieves do.
func TestBWSBeatsABPForTheBusyProgram(t *testing.T) {
	mean := func(pol Policy) float64 {
		m := mustMachine(t, debugConfig(pol), []*task.Graph{wideGraph(), narrowGraph()})
		res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 120_000_000_000})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		return res.Programs[0].MeanRunUS()
	}
	abp, bws := mean(ABP), mean(BWS)
	t.Logf("wide program: ABP=%.0fµs BWS=%.0fµs", abp, bws)
	if bws > abp {
		t.Errorf("BWS (%.0f) not faster than ABP (%.0f) for the busy program", bws, abp)
	}
}

// TestPolicyOrderingABP_BWS_DWS: the related-work ordering the paper
// implies — DWS ≤ BWS ≤ ABP for a demanding program next to a narrow one.
func TestPolicyOrderingABP_BWS_DWS(t *testing.T) {
	mean := func(pol Policy) float64 {
		m := mustMachine(t, debugConfig(pol), []*task.Graph{wideGraph(), narrowGraph()})
		res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 120_000_000_000})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		return res.Programs[0].MeanRunUS()
	}
	abp, bws, dws := mean(ABP), mean(BWS), mean(DWS)
	t.Logf("ABP=%.0f BWS=%.0f DWS=%.0f", abp, bws, dws)
	if !(dws <= bws*1.05 && bws <= abp*1.05) {
		t.Errorf("ordering violated: DWS=%.0f BWS=%.0f ABP=%.0f", dws, bws, abp)
	}
}

// TestAsymmetricSpeedsSlowDownCompute: a compute-bound program on a
// half-speed machine takes about twice as long; a fully memory-bound one
// is unaffected (the (1-I)/s + I model).
func TestAsymmetricSpeedsSlowDownCompute(t *testing.T) {
	solo := func(intensity float64, speeds []float64) float64 {
		g := &task.Graph{Name: "g", Root: task.ParallelFor(64, 3000), MemIntensity: intensity}
		cfg := debugConfig(EP)
		cfg.CoreSpeeds = speeds
		m := mustMachine(t, cfg, []*task.Graph{g})
		res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 60_000_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.Programs[0].MeanRunUS()
	}
	half := make([]float64, 16)
	for i := range half {
		half[i] = 0.5
	}
	fast := solo(0, nil)
	slow := solo(0, half)
	if ratio := slow / fast; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("compute-bound on half-speed cores: ratio %.2f, want ≈2", ratio)
	}
	memFast := solo(1, nil)
	memSlow := solo(1, half)
	if ratio := memSlow / memFast; ratio > 1.1 {
		t.Errorf("memory-bound program slowed %.2fx by core speed, want ≈1", ratio)
	}
}

// TestIntensityPlacement: on an asymmetric machine, placing the
// memory-bound program on slow cores and the compute-bound one on fast
// cores beats the naive block allocation (§4.4's proposal).
func TestIntensityPlacement(t *testing.T) {
	speeds := make([]float64, 16)
	for i := range speeds {
		if i < 8 {
			speeds[i] = 1.0 // fast socket
		} else {
			speeds[i] = 0.5 // slow socket
		}
	}
	run := func(placement bool) (float64, float64) {
		// Program order chosen so naive allocation puts the compute-bound
		// program on the slow block.
		mem := &task.Graph{Name: "mem", Root: task.IterativeFor(40, 32, 1200, 5), MemIntensity: 0.9}
		cpu := &task.Graph{Name: "cpu", Root: task.DivideAndConquer(7, 2, 1500, 10, 20), MemIntensity: 0.05}
		cfg := debugConfig(DWS)
		cfg.CoreSpeeds = speeds
		cfg.IntensityPlacement = placement
		m := mustMachine(t, cfg, []*task.Graph{mem, cpu})
		res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 240_000_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.Programs[0].MeanRunUS(), res.Programs[1].MeanRunUS()
	}
	memNaive, cpuNaive := run(false)
	memSmart, cpuSmart := run(true)
	t.Logf("naive: mem=%.0f cpu=%.0f | intensity-aware: mem=%.0f cpu=%.0f",
		memNaive, cpuNaive, memSmart, cpuSmart)
	// The compute-bound program must benefit; the memory-bound one must
	// not be badly hurt.
	if cpuSmart >= cpuNaive {
		t.Errorf("intensity placement did not help the compute-bound program (%.0f vs %.0f)",
			cpuSmart, cpuNaive)
	}
	if memSmart > memNaive*1.25 {
		t.Errorf("intensity placement hurt the memory-bound program too much (%.0f vs %.0f)",
			memSmart, memNaive)
	}
}

// TestIntensityPlacementHomesDisjoint: speed-aware homes still partition
// the machine.
func TestIntensityPlacementHomesDisjoint(t *testing.T) {
	speeds := []float64{1, 0.5, 1, 0.5, 1, 0.5, 1, 0.5}
	graphs := []*task.Graph{
		{Name: "a", Root: task.Leaf(10), MemIntensity: 0.9},
		{Name: "b", Root: task.Leaf(10), MemIntensity: 0.1},
		{Name: "c", Root: task.Leaf(10), MemIntensity: 0.5},
	}
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.CoreSpeeds = speeds
	cfg.IntensityPlacement = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	homes := homeAllocation(&cfg, graphs)
	seen := make(map[int]bool)
	total := 0
	for _, home := range homes {
		for _, c := range home {
			if seen[c] {
				t.Fatalf("core %d assigned twice: %v", c, homes)
			}
			seen[c] = true
			total++
		}
	}
	if total != 8 {
		t.Fatalf("homes cover %d cores, want 8: %v", total, homes)
	}
	// The most memory-bound program (a) must hold the slowest cores.
	for _, c := range homes[0] {
		if speeds[c] != 0.5 {
			t.Fatalf("memory-bound program landed on fast core %d: %v", c, homes)
		}
	}
}

// TestCoreSpeedsValidation: malformed speed vectors are rejected.
func TestCoreSpeedsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoreSpeeds = []float64{1, 1}
	if err := cfg.Validate(); err == nil {
		t.Error("wrong-length CoreSpeeds accepted")
	}
	cfg = DefaultConfig()
	cfg.CoreSpeeds = make([]float64, 16)
	if err := cfg.Validate(); err == nil {
		t.Error("zero core speed accepted")
	}
}

// TestOccupancySampling: samples are recorded and render as a timeline.
func TestOccupancySampling(t *testing.T) {
	m := mustMachine(t, debugConfig(DWS), []*task.Graph{wideGraph(), narrowGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 120_000_000_000, SampleUS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 10 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	// Both programs must appear somewhere in the timeline.
	seen := map[int32]bool{}
	for _, s := range res.Samples {
		for _, id := range s.Running {
			seen[id] = true
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("timeline missing a program: %v", seen)
	}
	art := res.TimelineASCII(60)
	if !strings.Contains(art, "c0") || !strings.Contains(art, "1") {
		t.Fatalf("timeline render:\n%s", art)
	}
	lines := strings.Count(art, "\n")
	if lines != 16 {
		t.Fatalf("timeline has %d rows, want 16", lines)
	}
	if res.TimelineASCII(0) == "" {
		t.Fatal("unbounded render empty")
	}
}

// TestTimelineEmptyWithoutSampling: no sampling, no timeline.
func TestTimelineEmptyWithoutSampling(t *testing.T) {
	m := mustMachine(t, debugConfig(EP), []*task.Graph{wideGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 1, HorizonUS: 60_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimelineASCII(10) != "" {
		t.Fatal("timeline rendered without samples")
	}
}

// TestStrongYieldPath: the idealised ABP yield rotates the run queue on a
// failed steal with visible work (covers yieldRotate).
func TestStrongYieldPath(t *testing.T) {
	cfg := debugConfig(ABP)
	cfg.StrongYield = true
	m := mustMachine(t, cfg, []*task.Graph{wideGraph(), narrowGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 240_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Programs {
		if p.Runs() < 2 {
			t.Fatalf("%s: %d runs", p.Name, p.Runs())
		}
	}
}
