package sim

import (
	"testing"

	"dws/internal/task"
)

// runMix co-runs two graphs under a policy and returns each program's mean
// run time in µs.
func runMix(t *testing.T, pol Policy, a, b *task.Graph, seed int64) (float64, float64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = pol
	cfg.Seed = seed
	m, err := NewMachine(cfg, []*task.Graph{a, b})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(RunOpts{TargetRuns: 4, HorizonUS: 30_000_000_000})
	if err != nil {
		t.Fatalf("%v: %v", pol, err)
	}
	return res.Programs[0].MeanRunUS(), res.Programs[1].MeanRunUS()
}

// TestShapeProbe prints mean run times of an asymmetric mix (high
// parallelism vs low parallelism) under each policy. Exploratory.
func TestShapeProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	// A: highly parallel compute, 2s of work, parallelism >> 16.
	a := &task.Graph{Name: "wide", Root: task.DivideAndConquer(9, 2, 4000, 20, 40), MemIntensity: 0.3}
	// B: limited parallelism — iterative with 6 chunks per barrier and
	// negligible serial sections; cannot use more than ~6 cores.
	b := &task.Graph{Name: "narrow", Root: task.IterativeFor(300, 6, 1200, 5), MemIntensity: 0.6}

	for _, pol := range []Policy{ABP, EP, DWS, DWSNC} {
		cfg := DefaultConfig()
		cfg.Policy = pol
		m, err := NewMachine(cfg, []*task.Graph{a, b})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(RunOpts{TargetRuns: 4, HorizonUS: 30_000_000_000})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		pa, pb := res.Programs[0], res.Programs[1]
		t.Logf("%-6s wide=%8.0fµs narrow=%8.0fµs", pol, pa.MeanRunUS(), pb.MeanRunUS())
		t.Logf("       narrow: steals=%d failed=%d sleeps=%d wakes=%d evict=%d claims=%d reclaims=%d spinUS=%d",
			pb.Stats.Steals, pb.Stats.FailedSteals, pb.Stats.Sleeps, pb.Stats.Wakes,
			pb.Stats.Evictions, pb.Stats.Claims, pb.Stats.Reclaims, pb.Stats.SpinUS)
	}
	// Solo baselines under plain work-stealing (ABP alone = traditional WS).
	for _, g := range []*task.Graph{a, b} {
		cfg := DefaultConfig()
		cfg.Policy = ABP
		m, _ := NewMachine(cfg, []*task.Graph{g})
		res, err := m.Run(RunOpts{TargetRuns: 4, HorizonUS: 30_000_000_000})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("solo %-7s = %8.0fµs", g.Name, res.Programs[0].MeanRunUS())
	}
}
