package sim

// Federated open-loop replay: RunFederation drives K independent machines
// ("shards") in event-time lockstep off one global arrival stream, the sim
// analog of a dwsrouter front tier over N dwsd instances. Every shard
// hosts every tenant (dwsd creates tenants on first use); each job is
// offered to its tenant's home shard first and, when the home refuses it
// (queue full, global-cap reject, or a later shed from the WFQ backlog),
// the driver may spill it to a sibling under a configurable policy —
// {no-spill, random, next-preferred} — charging a per-(src,dst) spill
// latency on every redirect, so committed results can predict which spill
// policy the live router should run before it exists in production.
//
// Determinism: machines share no state; the driver always advances the
// globally earliest event (ties broken by shard index, with arrivals
// firing before same-time machine events), arrivals at equal times fire in
// job-index order, and the only RNG (random spill) is seeded from the
// config. Given identical options a federated replay is bit-for-bit
// reproducible.

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dws/internal/task"
	"dws/internal/wfq"
)

// SpillPolicy selects how a refused job is redirected between shards.
type SpillPolicy int

const (
	// SpillNone never redirects: a refused job resolves at its home shard.
	SpillNone SpillPolicy = iota
	// SpillRandom redirects to a uniformly random unvisited shard.
	SpillRandom
	// SpillNext redirects to the next unvisited shard in the tenant's
	// preference order (the consistent-hash ring walk the live router uses).
	SpillNext
)

// ParseSpillPolicy maps the CLI/scenario names onto a policy.
func ParseSpillPolicy(s string) (SpillPolicy, error) {
	switch s {
	case "", "none", "no-spill":
		return SpillNone, nil
	case "random", "random-spill":
		return SpillRandom, nil
	case "next", "next-preferred", "next-preferred-spill":
		return SpillNext, nil
	}
	return 0, fmt.Errorf("sim: unknown spill policy %q (want none|random|next)", s)
}

// String names the policy as reports and BENCH_federation.json do.
func (s SpillPolicy) String() string {
	switch s {
	case SpillNone:
		return "no-spill"
	case SpillRandom:
		return "random"
	case SpillNext:
		return "next-preferred"
	default:
		return fmt.Sprintf("SpillPolicy(%d)", int(s))
	}
}

// FedJob is one arrival in the federation's global job stream.
type FedJob struct {
	// Tenant indexes FedOpts.Programs.
	Tenant int
	// AtUS is the arrival time at the front tier.
	AtUS int64
	// Graph is the job's task graph.
	Graph *task.Graph
	// DeadlineUS bounds queue wait + run time from AtUS across every spill
	// hop (the deadline does not reset on redirect); 0 means none.
	DeadlineUS int64
}

// FedOpts configures a federated replay.
type FedOpts struct {
	// Cfg is the per-shard machine configuration; shard i runs it with
	// Seed+i so shards do not mirror each other's victim choices.
	Cfg Config
	// Shards is K, the number of machines.
	Shards int
	// Programs are the per-tenant anchor graphs, hosted on every shard.
	Programs []*task.Graph
	// Jobs is the global arrival stream. Arrivals at equal times fire in
	// index order.
	Jobs []FedJob
	// Pref[tenant] is the shard preference order, home first — the ring
	// walk. Every entry must be a non-empty list of distinct shard indices.
	Pref [][]int
	// Spill is the redirect policy.
	Spill SpillPolicy
	// SpillBudget caps redirect hops per job; ≤0 defaults to 2, matching
	// the live router.
	SpillBudget int
	// SpillLatencyUS[from][to] is the redirect delay between shards (the
	// inter-machine generalization of the intra-machine socket latency
	// matrix); nil charges 0.
	SpillLatencyUS [][]int64
	// QueueCap bounds each tenant's per-shard admission queue (≤0 = 16).
	QueueCap int
	// Admission, when non-nil, enables the WFQ front-door analog on every
	// shard (cloned per shard).
	Admission *AdmissionOpts
	// HorizonUS aborts a runaway replay; 0 means none.
	HorizonUS int64
}

// FedOutcome is the terminal record of one federated job.
type FedOutcome struct {
	// Tenant and Index identify the job (Index is the global stream index).
	Tenant int
	Index  int
	// AtUS echoes the front-tier arrival time.
	AtUS int64
	// Status is the terminal classification.
	Status JobStatus
	// Shard is where the job resolved: the machine that ran it for
	// ok/late/expired, the last refusing machine for rejections and sheds.
	Shard int
	// Spills counts redirect hops taken.
	Spills int
	// DoneUS is the completion time (-1 if the job never ran).
	DoneUS int64
}

// SpillCount aggregates redirects over one (from, to, reason) edge.
// Reason is "reject" (refused at arrival) or "shed" (displaced from the
// WFQ backlog after admission), mirroring the live router's
// dws_router_spills_total labels.
type SpillCount struct {
	From, To int
	Reason   string
	Count    int64
}

// FedResults is the outcome of a federated replay.
type FedResults struct {
	// Outcomes[i] resolves Jobs[i].
	Outcomes []FedOutcome
	// Spills aggregates redirects, sorted by (From, To, Reason).
	Spills []SpillCount
	// EndTimeUS is the latest shard clock at termination.
	EndTimeUS int64
	// Shards holds each machine's own results (steal stats, busy time).
	Shards []*Results
}

// startFed arms a machine for driver-injected arrivals: all programs
// activate at time 0 and the machine never self-stops (the federation
// driver owns termination).
func (m *Machine) startFed(queueCap int, adm *AdmissionOpts) error {
	if m.nEv > 0 || m.jobMode {
		return fmt.Errorf("%w: machine already ran", ErrBadConfig)
	}
	if queueCap <= 0 {
		queueCap = 16
	}
	if adm != nil {
		if adm.Weights != nil && len(adm.Weights) != len(m.progs) {
			return fmt.Errorf("%w: %d admission weights for %d programs",
				ErrBadConfig, len(adm.Weights), len(m.progs))
		}
		m.admOpts = adm
		m.adm = wfq.New[*openJob]()
		for i := range m.progs {
			w := 1.0
			if adm.Weights != nil {
				w = adm.Weights[i]
			}
			m.adm.AddFlow(i, w)
		}
	}
	m.jobMode = true
	m.fedMode = true
	m.fedQueueCap = queueCap
	for _, p := range m.progs {
		m.activateProgram(p)
		if m.cfg.Policy == DWS || m.cfg.Policy == DWSNC {
			m.scheduleCoordinator(p)
		}
	}
	for _, c := range m.cores {
		if c.cur == nil {
			m.dispatch(c)
		}
	}
	if m.arb != nil {
		m.scheduleArbiter()
	}
	return nil
}

// offerJob presents one job to the machine at its current clock. It
// returns whether the machine took ownership (started the job or admitted
// it to the queue) and, when it did not, the refusal status. The machine
// logs outcomes only for owned jobs; refusals are the driver's to record.
// This is jobArrive with the refusal paths surfaced instead of logged,
// and with early rejection measured against the deadline budget remaining
// after spill delays (for a home-shard arrival m.now == AtUS, so the two
// are identical).
func (m *Machine) offerJob(p *Program, j *openJob) (bool, JobStatus) {
	if p.curJob == nil && !p.runActive {
		m.jobsOutstanding++
		m.startJob(p, j, p.workers[p.home[0]])
		return true, JobOK
	}
	if m.adm == nil {
		if len(p.pending) >= m.fedQueueCap {
			return false, JobRejected
		}
		m.jobsOutstanding++
		p.pending = append(p.pending, j)
		return true, JobOK
	}
	ewma := p.svcEWMAUS
	backlog := m.adm.Len(p.idx)
	if m.admOpts.EarlyReject && ewma > 0 && j.DeadlineUS > 0 {
		remaining := j.AtUS + j.DeadlineUS - m.now
		if predicted := int64(backlog+1) * ewma; predicted > remaining {
			m.trace("p%d job %d early-rejected (predicted %dµs > remaining %dµs)",
				p.id, j.idx, predicted, remaining)
			return false, JobEarlyReject
		}
	}
	if backlog >= m.fedQueueCap {
		return false, JobRejected
	}
	cost := float64(ewma)
	if ewma == 0 {
		cost = float64(m.svcFallbackUS)
	}
	if m.admOpts.GlobalCap > 0 && m.adm.Total() >= m.admOpts.GlobalCap {
		fNew := m.adm.TagPreview(p.idx, cost)
		_, fMax, ok := m.adm.PeekMaxTail()
		if !ok || fMax <= fNew {
			return false, JobRejected
		}
		vid, victim, _ := m.adm.ShedMaxTail()
		m.trace("p%d job %d shed for p%d job %d (global cap)",
			m.progs[vid].id, victim.idx, p.id, j.idx)
		m.jobDone(m.progs[vid], victim, JobShed)
	}
	m.jobsOutstanding++
	m.adm.Enqueue(p.idx, j, cost)
	return true, JobOK
}

// stepEvent pops and runs the machine's earliest pending event.
func (m *Machine) stepEvent() error {
	ev := heap.Pop(&m.events).(*event)
	m.now = ev.at
	m.nEv++
	if m.nEv > m.cfg.MaxEvents {
		return ErrExploded
	}
	ev.fn()
	return nil
}

// advanceBefore runs every event strictly before t and moves the clock
// forward to t (never backwards: a shard whose clock already passed t —
// a spill arriving from a slower sibling — stays where it is, and the
// job effectively arrives at the shard's present).
func (m *Machine) advanceBefore(t int64) error {
	for len(m.events) > 0 && m.events[0].at < t {
		if err := m.stepEvent(); err != nil {
			return err
		}
	}
	if m.now < t {
		m.now = t
	}
	return nil
}

// fedArrival is one pending delivery of a job to a shard.
type fedArrival struct {
	at    int64
	seq   int64
	job   int
	shard int
}

type fedArrivalHeap []*fedArrival

func (h fedArrivalHeap) Len() int { return len(h) }
func (h fedArrivalHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h fedArrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *fedArrivalHeap) Push(x any)   { *h = append(*h, x.(*fedArrival)) }
func (h *fedArrivalHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// RunFederation replays the global job stream through K shards under the
// configured spill policy and returns per-job outcomes plus the spill
// ledger.
func RunFederation(opts FedOpts) (*FedResults, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("%w: Shards must be >= 1", ErrBadConfig)
	}
	if len(opts.Programs) == 0 {
		return nil, ErrNoPrograms
	}
	if len(opts.Jobs) == 0 {
		return nil, fmt.Errorf("%w: no jobs", ErrBadConfig)
	}
	if len(opts.Pref) != len(opts.Programs) {
		return nil, fmt.Errorf("%w: %d preference orders for %d tenants",
			ErrBadConfig, len(opts.Pref), len(opts.Programs))
	}
	for tn, pref := range opts.Pref {
		if len(pref) == 0 {
			return nil, fmt.Errorf("%w: tenant %d has an empty shard preference", ErrBadConfig, tn)
		}
		seen := make([]bool, opts.Shards)
		for _, s := range pref {
			if s < 0 || s >= opts.Shards {
				return nil, fmt.Errorf("%w: tenant %d prefers shard %d of %d", ErrBadConfig, tn, s, opts.Shards)
			}
			if seen[s] {
				return nil, fmt.Errorf("%w: tenant %d repeats shard %d", ErrBadConfig, tn, s)
			}
			seen[s] = true
		}
	}
	if opts.SpillLatencyUS != nil {
		if len(opts.SpillLatencyUS) != opts.Shards {
			return nil, fmt.Errorf("%w: SpillLatencyUS has %d rows for %d shards",
				ErrBadConfig, len(opts.SpillLatencyUS), opts.Shards)
		}
		for i, row := range opts.SpillLatencyUS {
			if len(row) != opts.Shards {
				return nil, fmt.Errorf("%w: SpillLatencyUS row %d has %d entries for %d shards",
					ErrBadConfig, i, len(row), opts.Shards)
			}
			for j, v := range row {
				if v < 0 {
					return nil, fmt.Errorf("%w: negative SpillLatencyUS[%d][%d]", ErrBadConfig, i, j)
				}
			}
		}
	}
	for i, j := range opts.Jobs {
		if j.Tenant < 0 || j.Tenant >= len(opts.Programs) {
			return nil, fmt.Errorf("%w: job %d names tenant %d of %d", ErrBadConfig, i, j.Tenant, len(opts.Programs))
		}
		if j.AtUS < 0 || j.DeadlineUS < 0 {
			return nil, fmt.Errorf("%w: job %d has a negative time", ErrBadConfig, i)
		}
		if err := task.Validate(j.Graph); err != nil {
			return nil, fmt.Errorf("sim: federation job %d: %w", i, err)
		}
	}
	if opts.SpillBudget <= 0 {
		opts.SpillBudget = 2
	}

	machines := make([]*Machine, opts.Shards)
	for s := range machines {
		cfg := opts.Cfg
		cfg.Seed += int64(s) * 101
		m, err := NewMachine(cfg, opts.Programs)
		if err != nil {
			return nil, fmt.Errorf("sim: federation shard %d: %w", s, err)
		}
		var adm *AdmissionOpts
		if opts.Admission != nil {
			a := *opts.Admission
			adm = &a
		}
		if err := m.startFed(opts.QueueCap, adm); err != nil {
			return nil, fmt.Errorf("sim: federation shard %d: %w", s, err)
		}
		machines[s] = m
	}

	type fedState struct {
		visited []bool
		budget  int
		spills  int
	}
	total := len(opts.Jobs)
	states := make([]fedState, total)
	open := make([]*openJob, total)
	outcomes := make([]FedOutcome, total)
	terminal := 0
	resolve := func(idx int, st JobStatus, shard int, doneUS int64) {
		outcomes[idx] = FedOutcome{
			Tenant: opts.Jobs[idx].Tenant,
			Index:  idx,
			AtUS:   opts.Jobs[idx].AtUS,
			Status: st,
			Shard:  shard,
			Spills: states[idx].spills,
			DoneUS: doneUS,
		}
		terminal++
	}

	type spillKey struct {
		from, to int
		reason   string
	}
	spillLedger := map[spillKey]int64{}
	latency := func(from, to int) int64 {
		if opts.SpillLatencyUS == nil {
			return 0
		}
		return opts.SpillLatencyUS[from][to]
	}

	// The only nondeterminism budget in the whole replay: random spill
	// target choice, seeded off the shard config.
	rng := rand.New(rand.NewSource(opts.Cfg.Seed*2654435761 + 97))
	nextShard := func(idx, cur int) int {
		st := &states[idx]
		if opts.Spill == SpillNone || st.budget <= 0 {
			return -1
		}
		if opts.Spill == SpillNext {
			for _, s := range opts.Pref[opts.Jobs[idx].Tenant] {
				if !st.visited[s] {
					return s
				}
			}
			return -1
		}
		var cands []int
		for s := 0; s < opts.Shards; s++ {
			if !st.visited[s] {
				cands = append(cands, s)
			}
		}
		if len(cands) == 0 {
			return -1
		}
		return cands[rng.Intn(len(cands))]
	}

	arrivals := &fedArrivalHeap{}
	var arrSeq int64
	pushArrival := func(at int64, job, shard int) {
		arrSeq++
		heap.Push(arrivals, &fedArrival{at: at, seq: arrSeq, job: job, shard: shard})
	}
	for i, j := range opts.Jobs {
		states[i] = fedState{visited: make([]bool, opts.Shards), budget: opts.SpillBudget}
		open[i] = &openJob{Job: Job{AtUS: j.AtUS, Graph: j.Graph, DeadlineUS: j.DeadlineUS}, idx: i, startUS: -1}
		pushArrival(j.AtUS, i, opts.Pref[j.Tenant][0])
	}
	heap.Init(arrivals)

	// Shed jobs come back through the fedShed hook mid-event: redirect or
	// resolve them in place.
	for s := range machines {
		s := s
		m := machines[s]
		m.fedShed = func(_ *Program, j *openJob) {
			idx := j.idx
			n := nextShard(idx, s)
			if n < 0 {
				resolve(idx, JobShed, s, -1)
				return
			}
			states[idx].budget--
			states[idx].spills++
			spillLedger[spillKey{s, n, "shed"}]++
			pushArrival(m.now+latency(s, n), idx, n)
		}
	}

	// Outcomes the machines log (ok/late/expired) surface by draining each
	// machine's log cursor after it processes events.
	consumed := make([]int, opts.Shards)
	drain := func(s int) {
		m := machines[s]
		for ; consumed[s] < len(m.jobLog); consumed[s]++ {
			e := m.jobLog[consumed[s]]
			resolve(e.Index, e.Status, s, e.DoneUS)
		}
	}

	deliver := func(a *fedArrival) {
		idx := a.job
		st := &states[idx]
		st.visited[a.shard] = true
		m := machines[a.shard]
		p := m.progs[opts.Jobs[idx].Tenant]
		owned, why := m.offerJob(p, open[idx])
		if owned {
			return // the machine's log resolves it
		}
		if why == JobEarlyReject {
			// The live router forwards early_reject 429s to the client
			// unspilled: the prediction priced the tenant's own backlog, not
			// shard capacity, and a sibling shares the tenant's history.
			resolve(idx, JobEarlyReject, a.shard, -1)
			return
		}
		n := nextShard(idx, a.shard)
		if n < 0 {
			resolve(idx, why, a.shard, -1)
			return
		}
		st.budget--
		st.spills++
		spillLedger[spillKey{a.shard, n, "reject"}]++
		pushArrival(m.now+latency(a.shard, n), idx, n)
	}

	for terminal < total {
		mi := -1
		tm := int64(math.MaxInt64)
		for i, m := range machines {
			if len(m.events) > 0 && m.events[0].at < tm {
				tm, mi = m.events[0].at, i
			}
		}
		ta := int64(math.MaxInt64)
		if arrivals.Len() > 0 {
			ta = (*arrivals)[0].at
		}
		if mi == -1 && ta == math.MaxInt64 {
			return nil, ErrStalled
		}
		t := ta
		if tm < t {
			t = tm
		}
		if opts.HorizonUS > 0 && t > opts.HorizonUS {
			return nil, ErrHorizon
		}
		if ta <= tm {
			a := heap.Pop(arrivals).(*fedArrival)
			if err := machines[a.shard].advanceBefore(a.at); err != nil {
				return nil, err
			}
			drain(a.shard)
			deliver(a)
			drain(a.shard)
		} else {
			if err := machines[mi].stepEvent(); err != nil {
				return nil, err
			}
			drain(mi)
		}
	}

	res := &FedResults{Outcomes: outcomes}
	for _, m := range machines {
		if m.now > res.EndTimeUS {
			res.EndTimeUS = m.now
		}
		res.Shards = append(res.Shards, m.results())
	}
	for k, n := range spillLedger {
		res.Spills = append(res.Spills, SpillCount{From: k.from, To: k.to, Reason: k.reason, Count: n})
	}
	sort.Slice(res.Spills, func(i, j int) bool {
		a, b := res.Spills[i], res.Spills[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Reason < b.Reason
	})
	return res, nil
}
