package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"dws/internal/task"
)

func mustMachine(t *testing.T, cfg Config, graphs []*task.Graph) *Machine {
	t.Helper()
	m, err := NewMachine(cfg, graphs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func debugConfig(pol Policy) Config {
	cfg := DefaultConfig()
	cfg.Policy = pol
	cfg.Debug = true
	return cfg
}

// TestInvariantsHoldUnderAllPolicies runs a mixed scenario with the
// invariant checker enabled after every event.
func TestInvariantsHoldUnderAllPolicies(t *testing.T) {
	for _, pol := range []Policy{ABP, EP, DWS, DWSNC} {
		a := &task.Graph{Name: "a", Root: task.DivideAndConquer(7, 2, 1500, 10, 20), MemIntensity: 0.4}
		b := &task.Graph{Name: "b", Root: task.IterativeFor(40, 24, 900, 5), MemIntensity: 0.7}
		m := mustMachine(t, debugConfig(pol), []*task.Graph{a, b})
		if _, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 60_000_000_000}); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

// TestDeterminism: identical configuration and seed produce bit-identical
// results.
func TestDeterminism(t *testing.T) {
	run := func() *Results {
		a := &task.Graph{Name: "a", Root: task.DivideAndConquer(7, 2, 1200, 10, 20), MemIntensity: 0.5}
		b := &task.Graph{Name: "b", Root: task.IterativeFor(30, 20, 800, 5), MemIntensity: 0.6}
		cfg := DefaultConfig()
		cfg.Policy = DWS
		cfg.Seed = 42
		m := mustMachine(t, cfg, []*task.Graph{a, b})
		res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 60_000_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.EndTimeUS != r2.EndTimeUS || r1.Events != r2.Events {
		t.Fatalf("nondeterministic: end %d/%d events %d/%d",
			r1.EndTimeUS, r2.EndTimeUS, r1.Events, r2.Events)
	}
	if !reflect.DeepEqual(r1.Programs, r2.Programs) {
		t.Fatal("nondeterministic program results")
	}
}

// TestSeedChangesOutcome: a different seed changes the schedule without
// changing correctness.
func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed int64) *Results {
		a := &task.Graph{Name: "a", Root: task.DivideAndConquer(7, 2, 1200, 10, 20)}
		b := &task.Graph{Name: "b", Root: task.IterativeFor(30, 20, 800, 5)}
		cfg := DefaultConfig()
		cfg.Policy = DWS
		cfg.Seed = seed
		m := mustMachine(t, cfg, []*task.Graph{a, b})
		res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 60_000_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(1), run(2)
	if r1.EndTimeUS == r2.EndTimeUS && r1.Events == r2.Events {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	// Results stay in the same ballpark (same workload).
	for i := range r1.Programs {
		a, b := r1.Programs[i].MeanRunUS(), r2.Programs[i].MeanRunUS()
		if a > 2*b || b > 2*a {
			t.Fatalf("program %d: seed variance too large (%v vs %v)", i, a, b)
		}
	}
}

// TestWorkConservation: executed work equals graph work × completed runs
// (no work is lost or invented by scheduling).
func TestWorkConservation(t *testing.T) {
	for _, pol := range []Policy{ABP, EP, DWS, DWSNC} {
		g := &task.Graph{Name: "g", Root: task.DivideAndConquer(6, 2, 2000, 15, 25)}
		want := float64(task.Analyze(g).Work)
		cfg := DefaultConfig()
		cfg.Policy = pol
		m := mustMachine(t, cfg, []*task.Graph{g})
		res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 60_000_000_000})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		runs := float64(res.Programs[0].Runs())
		got := res.Programs[0].Stats.WorkUS
		if math.Abs(got-want*runs) > 1 {
			t.Fatalf("%v: executed %.1fµs of work, want %.1f × %v runs", pol, got, want, runs)
		}
	}
}

// TestUtilizationBounds: utilization is within (0, 1].
func TestUtilizationBounds(t *testing.T) {
	g := &task.Graph{Name: "g", Root: task.ParallelFor(64, 3000)}
	cfg := DefaultConfig()
	cfg.Policy = EP
	m := mustMachine(t, cfg, []*task.Graph{g})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 60_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u <= 0 || u > 1.0000001 {
		t.Fatalf("utilization = %v", u)
	}
	if res.String() == "" {
		t.Fatal("empty Results.String")
	}
}

// TestConstructorErrors covers NewMachine validation.
func TestConstructorErrors(t *testing.T) {
	good := &task.Graph{Name: "g", Root: task.Leaf(10)}
	if _, err := NewMachine(DefaultConfig(), nil); !errors.Is(err, ErrNoPrograms) {
		t.Fatalf("no graphs: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Cores = 1
	if _, err := NewMachine(cfg, []*task.Graph{good, good}); !errors.Is(err, ErrTooManyProg) {
		t.Fatalf("too many programs: %v", err)
	}
	bad := &task.Graph{Name: "bad", Root: nil}
	if _, err := NewMachine(DefaultConfig(), []*task.Graph{bad}); err == nil {
		t.Fatal("nil-root graph accepted")
	}
	cfg = DefaultConfig()
	cfg.Cores = 0
	if _, err := NewMachine(cfg, []*task.Graph{good}); !errors.Is(err, ErrNoCores) {
		t.Fatalf("zero cores: %v", err)
	}
}

// TestHorizonError: an unreachable target trips the horizon.
func TestHorizonError(t *testing.T) {
	g := &task.Graph{Name: "g", Root: task.Leaf(1_000_000)}
	m := mustMachine(t, DefaultConfig(), []*task.Graph{g})
	if _, err := m.Run(RunOpts{TargetRuns: 100, HorizonUS: 50_000}); !errors.Is(err, ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
}

// TestMaxEventsError: the runaway valve fires.
func TestMaxEventsError(t *testing.T) {
	g := &task.Graph{Name: "g", Root: task.ParallelFor(256, 500)}
	cfg := DefaultConfig()
	cfg.MaxEvents = 100
	m := mustMachine(t, cfg, []*task.Graph{g})
	if _, err := m.Run(RunOpts{TargetRuns: 5}); !errors.Is(err, ErrExploded) {
		t.Fatalf("err = %v, want ErrExploded", err)
	}
}

// TestSingleCoreMachine: everything still works at k=1.
func TestSingleCoreMachine(t *testing.T) {
	g := &task.Graph{Name: "g", Root: task.DivideAndConquer(4, 2, 500, 5, 5)}
	cfg := debugConfig(DWS)
	cfg.Cores = 1
	cfg.SocketSize = 1
	m := mustMachine(t, cfg, []*task.Graph{g})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 60_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(task.Analyze(g).Work) * 2
	mean := res.Programs[0].MeanRunUS()
	if mean < want/2-1 {
		t.Fatalf("single core ran 2 runs of %.0fµs work in %.0fµs each", want/2, mean)
	}
}

// TestThreeProgramsDWS: m=3 exercises uneven home allocation (16/3).
func TestThreeProgramsDWS(t *testing.T) {
	graphs := []*task.Graph{
		{Name: "a", Root: task.DivideAndConquer(6, 2, 1000, 10, 10)},
		{Name: "b", Root: task.IterativeFor(20, 20, 600, 5)},
		{Name: "c", Root: task.ParallelFor(64, 900)},
	}
	m := mustMachine(t, debugConfig(DWS), graphs)
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Programs {
		if p.Runs() < 2 {
			t.Fatalf("%s finished %d runs", p.Name, p.Runs())
		}
	}
}

// TestPolicyStrings covers the String methods.
func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{ABP: "ABP", EP: "EP", DWS: "DWS", DWSNC: "DWS-NC", Policy(9): "Policy(9)"}
	for pol, want := range cases {
		if got := pol.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(pol), got, want)
		}
	}
	states := map[wState]string{
		wOff: "off", wSleeping: "sleeping", wWaking: "waking",
		wReady: "ready", wRunning: "running", wSpinning: "spinning", wState(9): "?",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("state %d = %q, want %q", int(s), got, want)
		}
	}
}

// TestConfigValidation covers the error paths of Config.Validate.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = -1 },
		func(c *Config) { c.QuantumUS = 0 },
		func(c *Config) { c.StealCostUS = 0 },
		func(c *Config) { c.CtxSwitchUS = -1 },
		func(c *Config) { c.StealYieldUS = -1 },
		func(c *Config) { c.WakeLatencyUS = -1 },
		func(c *Config) { c.CoordCostUS = -1 },
		func(c *Config) { c.CachePenalty = 0.5 },
		func(c *Config) { c.CacheWarmUS = -1 },
		func(c *Config) { c.LLCPenalty = -1 },
		func(c *Config) { c.SpinContention = -0.1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Defaults fill in.
	cfg := DefaultConfig()
	cfg.SocketSize = 0
	cfg.TSleep = 0
	cfg.CoordPeriodUS = 0
	cfg.MaxEvents = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SocketSize != cfg.Cores || cfg.TSleep != cfg.Cores ||
		cfg.CoordPeriodUS != 10000 || cfg.MaxEvents == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}
