package sim

import "fmt"

// verify checks machine-wide invariants. It runs after every event when
// Config.Debug is set and panics on the first violation — a structural
// bug detector for tests.
func (m *Machine) verify() {
	// Per-core run-queue consistency.
	for _, c := range m.cores {
		if len(c.runq) == 0 {
			if c.cur != nil {
				panic(fmt.Sprintf("sim: core %d has cur but empty runq", c.id))
			}
			continue
		}
		if c.cur != c.runq[0] {
			panic(fmt.Sprintf("sim: core %d cur is not runq head", c.id))
		}
		seen := map[*Worker]bool{}
		for _, w := range c.runq {
			if w.id != c.id {
				panic(fmt.Sprintf("sim: worker affined to %d is in core %d's runq", w.id, c.id))
			}
			if seen[w] {
				panic(fmt.Sprintf("sim: worker duplicated in core %d's runq", c.id))
			}
			seen[w] = true
			switch w.state {
			case wReady, wRunning, wSpinning:
			default:
				panic(fmt.Sprintf("sim: %v worker in core %d's runq", w.state, c.id))
			}
		}
	}

	// Per-program active-count accounting and sleeping-state checks.
	for _, p := range m.progs {
		active := 0
		for _, w := range p.workers {
			switch w.state {
			case wWaking, wReady, wRunning, wSpinning:
				active++
			case wSleeping, wOff:
				if w.cur != nil {
					panic(fmt.Sprintf("sim: %v worker p%d/w%d holds a task", w.state, p.id, w.id))
				}
			}
		}
		if active != p.active {
			panic(fmt.Sprintf("sim: p%d active count %d, tracked %d", p.id, active, p.active))
		}
	}

	// DWS exclusivity: each core hosts at most one scheduled-or-queued
	// worker whose program occupies the core; any other resident must be
	// pending eviction (its program no longer occupies the core).
	if m.table != nil {
		for _, c := range m.cores {
			occupants := 0
			for _, p := range m.progs {
				w := p.workers[c.id]
				switch w.state {
				case wReady, wRunning, wSpinning:
					if m.table.Occupant(c.id) == p.id {
						occupants++
					}
				}
			}
			if occupants > 1 {
				panic(fmt.Sprintf("sim: core %d hosts %d occupying workers", c.id, occupants))
			}
		}
	}
}
