package sim

// Open-loop job replay: instead of the paper's closed loop (every program
// re-runs its one graph until a target count), RunOpen feeds each program
// a timed stream of jobs — each its own task graph — through a bounded
// pending queue, mirroring dwsd's admission model: a job arriving at a
// full queue is rejected (the 429 analog), a job whose deadline passes
// while queued is skipped and never started, and a started job runs to
// completion (kernels are not preemptible) but is counted late if it
// finishes past its deadline.
//
// This is the simulation substrate of internal/scenario: given identical
// configuration, jobs, and seed, a replay is bit-for-bit reproducible on
// the virtual clock.

import (
	"fmt"
	"sort"

	"dws/internal/task"
)

// Job is one open-loop work item for a program.
type Job struct {
	// AtUS is the arrival time on the simulated clock.
	AtUS int64
	// Graph is the job's task graph (validated by RunOpen).
	Graph *task.Graph
	// DeadlineUS bounds queue wait + run time, measured from AtUS; 0 means
	// no deadline.
	DeadlineUS int64
}

// JobStatus classifies one job's outcome.
type JobStatus int

const (
	// JobOK: completed within its deadline (or had none).
	JobOK JobStatus = iota
	// JobLate: started in time but completed past its deadline.
	JobLate
	// JobExpired: deadline passed while queued; never started.
	JobExpired
	// JobRejected: the pending queue was full at arrival.
	JobRejected
)

// String names the status as the scenario reports do.
func (s JobStatus) String() string {
	switch s {
	case JobOK:
		return "ok"
	case JobLate:
		return "late"
	case JobExpired:
		return "expired"
	case JobRejected:
		return "rejected"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// JobOutcome is the terminal record of one job.
type JobOutcome struct {
	// Prog is the program index (RunOpen's Jobs index).
	Prog int
	// Index is the job's index within its program's stream.
	Index int
	// AtUS echoes the arrival time.
	AtUS int64
	// Status is the terminal classification.
	Status JobStatus
	// StartUS is when execution began (-1 for rejected/expired jobs);
	// StartUS-AtUS is the queue wait.
	StartUS int64
	// DoneUS is when execution completed (-1 if the job never ran);
	// DoneUS-AtUS is the end-to-end latency.
	DoneUS int64
}

// openJob is a Job in flight, with its stream index and start time.
type openJob struct {
	Job
	idx     int
	startUS int64
}

// OpenOpts configures an open-loop replay.
type OpenOpts struct {
	// Jobs[i] is program i's job stream, sorted by AtUS. Streams may be
	// empty (a tenant that only churns), but at least one job must exist
	// overall.
	Jobs [][]Job
	// JoinsUS[i], when non-nil, is program i's activation time: its workers
	// participate only from then on (tenant churn). nil means everyone is
	// present from time 0. A program's first job must not precede its join.
	JoinsUS []int64
	// QueueCap bounds each program's pending queue (the running job is not
	// counted); ≤0 defaults to 16, dwsd's default admission depth.
	QueueCap int
	// HorizonUS aborts the replay at this simulated time; 0 means none.
	HorizonUS int64
	// SampleUS, when positive, records core-occupancy samples as in
	// RunOpts.
	SampleUS int64
}

// RunOpen replays the job streams and returns results with the Jobs
// outcome log populated (sorted by program, then stream index). The
// machine cannot be reused.
func (m *Machine) RunOpen(opts OpenOpts) (*Results, error) {
	if m.nEv > 0 || m.jobMode {
		return nil, fmt.Errorf("%w: machine already ran", ErrBadConfig)
	}
	if len(opts.Jobs) != len(m.progs) {
		return nil, fmt.Errorf("%w: %d job streams for %d programs",
			ErrBadConfig, len(opts.Jobs), len(m.progs))
	}
	if opts.JoinsUS != nil && len(opts.JoinsUS) != len(m.progs) {
		return nil, fmt.Errorf("%w: %d join times for %d programs",
			ErrBadConfig, len(opts.JoinsUS), len(m.progs))
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 16
	}
	total := 0
	for i, js := range opts.Jobs {
		join := int64(0)
		if opts.JoinsUS != nil {
			join = opts.JoinsUS[i]
		}
		last := join
		for k, j := range js {
			if j.AtUS < last {
				return nil, fmt.Errorf("%w: program %d job %d at %dµs out of order (prev %dµs / join)",
					ErrBadConfig, i, k, j.AtUS, last)
			}
			last = j.AtUS
			if j.DeadlineUS < 0 {
				return nil, fmt.Errorf("%w: program %d job %d negative deadline", ErrBadConfig, i, k)
			}
			if err := task.Validate(j.Graph); err != nil {
				return nil, fmt.Errorf("sim: program %d job %d: %w", i, k, err)
			}
		}
		total += len(js)
	}
	if total == 0 {
		return nil, fmt.Errorf("%w: no jobs", ErrBadConfig)
	}

	m.jobMode = true
	m.jobsOutstanding = total
	for i, p := range m.progs {
		p := p
		join := int64(0)
		if opts.JoinsUS != nil {
			join = opts.JoinsUS[i]
		}
		activate := func() {
			m.activateProgram(p)
			if m.cfg.Policy == DWS || m.cfg.Policy == DWSNC {
				m.scheduleCoordinator(p)
			}
		}
		if join <= 0 {
			activate()
		} else {
			m.schedule(join, activate)
		}
		for k, j := range opts.Jobs[i] {
			oj := &openJob{Job: j, idx: k, startUS: -1}
			m.schedule(j.AtUS, func() { m.jobArrive(p, oj, opts.QueueCap) })
		}
	}
	for _, c := range m.cores {
		if c.cur == nil {
			m.dispatch(c)
		}
	}
	if m.arb != nil {
		m.scheduleArbiter()
	}
	m.startSampling(opts.SampleUS)

	err := m.loop(opts.HorizonUS)
	return m.results(), err
}

// jobArrive admits one job: start it if the program is idle, queue it if
// there is room, reject it otherwise.
func (m *Machine) jobArrive(p *Program, j *openJob, queueCap int) {
	if p.curJob == nil && !p.runActive {
		m.startJob(p, j, p.workers[p.home[0]])
		return
	}
	if len(p.pending) >= queueCap {
		m.trace("p%d job %d rejected (queue full)", p.id, j.idx)
		m.jobDone(p, j, JobRejected)
		return
	}
	p.pending = append(p.pending, j)
}

// startJob begins executing j (skipping over queued jobs whose deadline
// already expired — the server's runner does the same at dequeue). The
// root task is pushed onto w's deque; sleeper policies re-take their home
// share, and a GO push wakes a parked worker, so someone always comes for
// it.
func (m *Machine) startJob(p *Program, j *openJob, w *Worker) {
	for j.DeadlineUS > 0 && m.now > j.AtUS+j.DeadlineUS {
		m.trace("p%d job %d expired after %dµs queued", p.id, j.idx, m.now-j.AtUS)
		m.jobDone(p, j, JobExpired)
		if m.stopped || len(p.pending) == 0 {
			p.curJob = nil
			p.runActive = false
			return
		}
		j = p.pending[0]
		p.pending = p.pending[1:]
	}
	p.curJob = j
	j.startUS = m.now
	p.graph = j.Graph
	p.runActive = true
	p.runStart = m.now
	m.trace("p%d job %d starts after %dµs queued", p.id, j.idx, m.now-j.AtUS)
	m.regrabHome(p)
	m.pushTask(w, &simTask{node: j.Graph.Root})
	// The push came from the arrival event, not a running worker, so the
	// target itself may be mid-spin; a nil pusher notifies every spinner,
	// including w (dedup via notifyPending keeps this cheap).
	m.notifySpinners(p, nil)
}

// jobFinished is finishRun's open-loop tail: record the outcome and start
// the next queued job on the finishing worker.
func (m *Machine) jobFinished(p *Program, w *Worker) {
	j := p.curJob
	p.curJob = nil
	p.runActive = false
	st := JobOK
	if j.DeadlineUS > 0 && m.now > j.AtUS+j.DeadlineUS {
		st = JobLate
	}
	m.jobDone(p, j, st)
	if m.stopped || len(p.pending) == 0 {
		return
	}
	next := p.pending[0]
	p.pending = p.pending[1:]
	m.startJob(p, next, w)
}

// jobDone records a terminal outcome and stops the machine when the last
// job resolves.
func (m *Machine) jobDone(p *Program, j *openJob, st JobStatus) {
	done := int64(-1)
	if st == JobOK || st == JobLate {
		done = m.now
	}
	m.jobLog = append(m.jobLog, JobOutcome{
		Prog:    p.idx,
		Index:   j.idx,
		AtUS:    j.AtUS,
		Status:  st,
		StartUS: j.startUS,
		DoneUS:  done,
	})
	m.jobsOutstanding--
	if m.jobsOutstanding == 0 {
		m.stopped = true
	}
}

// sortedJobLog returns the outcome log in canonical (program, index)
// order.
func (m *Machine) sortedJobLog() []JobOutcome {
	log := append([]JobOutcome(nil), m.jobLog...)
	sort.Slice(log, func(i, k int) bool {
		if log[i].Prog != log[k].Prog {
			return log[i].Prog < log[k].Prog
		}
		return log[i].Index < log[k].Index
	})
	return log
}
