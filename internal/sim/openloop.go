package sim

// Open-loop job replay: instead of the paper's closed loop (every program
// re-runs its one graph until a target count), RunOpen feeds each program
// a timed stream of jobs — each its own task graph — through a bounded
// pending queue, mirroring dwsd's admission model: a job arriving at a
// full queue is rejected (the 429 analog), a job whose deadline passes
// while queued is skipped and never started, and a started job runs to
// completion (kernels are not preemptible) but is counted late if it
// finishes past its deadline.
//
// This is the simulation substrate of internal/scenario: given identical
// configuration, jobs, and seed, a replay is bit-for-bit reproducible on
// the virtual clock.

import (
	"fmt"
	"sort"

	"dws/internal/task"
	"dws/internal/wfq"
)

// Job is one open-loop work item for a program.
type Job struct {
	// AtUS is the arrival time on the simulated clock.
	AtUS int64
	// Graph is the job's task graph (validated by RunOpen).
	Graph *task.Graph
	// DeadlineUS bounds queue wait + run time, measured from AtUS; 0 means
	// no deadline.
	DeadlineUS int64
}

// JobStatus classifies one job's outcome.
type JobStatus int

const (
	// JobOK: completed within its deadline (or had none).
	JobOK JobStatus = iota
	// JobLate: started in time but completed past its deadline.
	JobLate
	// JobExpired: deadline passed while queued; never started.
	JobExpired
	// JobRejected: the pending queue was full at arrival (or, under WFQ
	// admission, the global cap was hit with the arrival itself the
	// worst-placed work).
	JobRejected
	// JobShed: removed from the WFQ backlog under global overload to
	// admit better-placed work; never started (server's "shed" 429).
	JobShed
	// JobEarlyReject: rejected at arrival because the predicted queue
	// wait (service EWMA × backlog ahead) already exceeded the deadline
	// (server's "early_reject" 429).
	JobEarlyReject
)

// String names the status as the scenario reports do.
func (s JobStatus) String() string {
	switch s {
	case JobOK:
		return "ok"
	case JobLate:
		return "late"
	case JobExpired:
		return "expired"
	case JobRejected:
		return "rejected"
	case JobShed:
		return "shed"
	case JobEarlyReject:
		return "early_reject"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// JobOutcome is the terminal record of one job.
type JobOutcome struct {
	// Prog is the program index (RunOpen's Jobs index).
	Prog int
	// Index is the job's index within its program's stream.
	Index int
	// AtUS echoes the arrival time.
	AtUS int64
	// Status is the terminal classification.
	Status JobStatus
	// StartUS is when execution began (-1 for rejected/expired jobs);
	// StartUS-AtUS is the queue wait.
	StartUS int64
	// DoneUS is when execution completed (-1 if the job never ran);
	// DoneUS-AtUS is the end-to-end latency.
	DoneUS int64
}

// openJob is a Job in flight, with its stream index and start time.
type openJob struct {
	Job
	idx     int
	startUS int64
}

// OpenOpts configures an open-loop replay.
type OpenOpts struct {
	// Jobs[i] is program i's job stream, sorted by AtUS. Streams may be
	// empty (a tenant that only churns), but at least one job must exist
	// overall.
	Jobs [][]Job
	// JoinsUS[i], when non-nil, is program i's activation time: its workers
	// participate only from then on (tenant churn). nil means everyone is
	// present from time 0. A program's first job must not precede its join.
	JoinsUS []int64
	// QueueCap bounds each program's pending queue (the running job is not
	// counted); ≤0 defaults to 16, dwsd's default admission depth.
	QueueCap int
	// HorizonUS aborts the replay at this simulated time; 0 means none.
	HorizonUS int64
	// SampleUS, when positive, records core-occupancy samples as in
	// RunOpts.
	SampleUS int64
	// Admission, when non-nil, replaces the independent per-program
	// bounded FIFOs with the WFQ admission analog mirroring
	// internal/server: weighted fair queueing across programs,
	// shed-from-max-tail under a global backlog cap, and deadline-aware
	// early rejection. nil preserves the legacy admission path exactly —
	// an Admission of all-equal weights, no global cap, and no early
	// rejection produces bit-identical outcomes to nil (the degeneracy
	// the tests pin).
	Admission *AdmissionOpts
}

// AdmissionOpts configures the WFQ front-door analog.
type AdmissionOpts struct {
	// Weights[i] is program i's WFQ weight (values ≤ 0 clamp to 1); nil
	// means all 1.
	Weights []float64
	// GlobalCap caps the total backlog across programs; at the cap an
	// arrival displaces the worst-placed queued tail in virtual time if
	// there is one, and is rejected otherwise. ≤0 means no global cap.
	GlobalCap int
	// EarlyReject enables deadline-aware early rejection: a job whose
	// predicted queue wait (service EWMA × jobs ahead, including the one
	// running) strictly exceeds its deadline resolves JobEarlyReject at
	// arrival.
	EarlyReject bool
}

// RunOpen replays the job streams and returns results with the Jobs
// outcome log populated (sorted by program, then stream index). The
// machine cannot be reused.
func (m *Machine) RunOpen(opts OpenOpts) (*Results, error) {
	if m.nEv > 0 || m.jobMode {
		return nil, fmt.Errorf("%w: machine already ran", ErrBadConfig)
	}
	if len(opts.Jobs) != len(m.progs) {
		return nil, fmt.Errorf("%w: %d job streams for %d programs",
			ErrBadConfig, len(opts.Jobs), len(m.progs))
	}
	if opts.JoinsUS != nil && len(opts.JoinsUS) != len(m.progs) {
		return nil, fmt.Errorf("%w: %d join times for %d programs",
			ErrBadConfig, len(opts.JoinsUS), len(m.progs))
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 16
	}
	total := 0
	for i, js := range opts.Jobs {
		join := int64(0)
		if opts.JoinsUS != nil {
			join = opts.JoinsUS[i]
		}
		last := join
		for k, j := range js {
			if j.AtUS < last {
				return nil, fmt.Errorf("%w: program %d job %d at %dµs out of order (prev %dµs / join)",
					ErrBadConfig, i, k, j.AtUS, last)
			}
			last = j.AtUS
			if j.DeadlineUS < 0 {
				return nil, fmt.Errorf("%w: program %d job %d negative deadline", ErrBadConfig, i, k)
			}
			if err := task.Validate(j.Graph); err != nil {
				return nil, fmt.Errorf("sim: program %d job %d: %w", i, k, err)
			}
		}
		total += len(js)
	}
	if total == 0 {
		return nil, fmt.Errorf("%w: no jobs", ErrBadConfig)
	}

	if opts.Admission != nil {
		if opts.Admission.Weights != nil && len(opts.Admission.Weights) != len(m.progs) {
			return nil, fmt.Errorf("%w: %d admission weights for %d programs",
				ErrBadConfig, len(opts.Admission.Weights), len(m.progs))
		}
		m.admOpts = opts.Admission
		m.adm = wfq.New[*openJob]()
		for i := range m.progs {
			w := 1.0
			if opts.Admission.Weights != nil {
				w = opts.Admission.Weights[i]
			}
			m.adm.AddFlow(i, w)
		}
	}

	m.jobMode = true
	m.jobsOutstanding = total
	for i, p := range m.progs {
		p := p
		join := int64(0)
		if opts.JoinsUS != nil {
			join = opts.JoinsUS[i]
		}
		activate := func() {
			m.activateProgram(p)
			if m.cfg.Policy == DWS || m.cfg.Policy == DWSNC {
				m.scheduleCoordinator(p)
			}
		}
		if join <= 0 {
			activate()
		} else {
			m.schedule(join, activate)
		}
		for k, j := range opts.Jobs[i] {
			oj := &openJob{Job: j, idx: k, startUS: -1}
			m.schedule(j.AtUS, func() { m.jobArrive(p, oj, opts.QueueCap) })
		}
	}
	for _, c := range m.cores {
		if c.cur == nil {
			m.dispatch(c)
		}
	}
	if m.arb != nil {
		m.scheduleArbiter()
	}
	m.startSampling(opts.SampleUS)

	err := m.loop(opts.HorizonUS)
	return m.results(), err
}

// jobArrive admits one job: start it if the program is idle, queue it if
// there is room, reject it otherwise. Under WFQ admission the queue-room
// decision additionally applies early rejection and the global-cap shed
// policy, exactly as the server's admission layer does.
func (m *Machine) jobArrive(p *Program, j *openJob, queueCap int) {
	if p.curJob == nil && !p.runActive {
		m.startJob(p, j, p.workers[p.home[0]])
		return
	}
	if m.adm == nil {
		if len(p.pending) >= queueCap {
			m.trace("p%d job %d rejected (queue full)", p.id, j.idx)
			m.jobDone(p, j, JobRejected)
			return
		}
		p.pending = append(p.pending, j)
		return
	}

	ewma := p.svcEWMAUS
	backlog := m.adm.Len(p.idx)
	if m.admOpts.EarlyReject && ewma > 0 && j.DeadlineUS > 0 {
		// The program is busy (the idle case started above), so the jobs
		// ahead are the backlog plus the one in service.
		if predicted := int64(backlog+1) * ewma; predicted > j.DeadlineUS {
			m.trace("p%d job %d early-rejected (predicted %dµs > deadline %dµs)",
				p.id, j.idx, predicted, j.DeadlineUS)
			m.jobDone(p, j, JobEarlyReject)
			return
		}
	}
	if backlog >= queueCap {
		m.trace("p%d job %d rejected (queue full)", p.id, j.idx)
		m.jobDone(p, j, JobRejected)
		return
	}
	cost := float64(ewma)
	if ewma == 0 {
		// No history yet: charge the machine-wide average run time (0 on a
		// fully cold machine, which wfq maps to DefaultCost).
		cost = float64(m.svcFallbackUS)
	}
	if m.admOpts.GlobalCap > 0 && m.adm.Total() >= m.admOpts.GlobalCap {
		fNew := m.adm.TagPreview(p.idx, cost)
		_, fMax, ok := m.adm.PeekMaxTail()
		if !ok || fMax <= fNew {
			m.trace("p%d job %d rejected (global cap, worst placed)", p.id, j.idx)
			m.jobDone(p, j, JobRejected)
			return
		}
		vid, victim, _ := m.adm.ShedMaxTail()
		m.trace("p%d job %d shed for p%d job %d (global cap)",
			m.progs[vid].id, victim.idx, p.id, j.idx)
		m.jobDone(m.progs[vid], victim, JobShed)
	}
	m.adm.Enqueue(p.idx, j, cost)
}

// pendingLen reports program p's admitted backlog under either admission
// substrate.
func (m *Machine) pendingLen(p *Program) int {
	if m.adm != nil {
		return m.adm.Len(p.idx)
	}
	return len(p.pending)
}

// popPending dequeues program p's next admitted job (FIFO under both
// substrates — WFQ never reorders one flow's jobs).
func (m *Machine) popPending(p *Program) (*openJob, bool) {
	if m.adm != nil {
		return m.adm.Pop(p.idx)
	}
	if len(p.pending) == 0 {
		return nil, false
	}
	j := p.pending[0]
	p.pending = p.pending[1:]
	return j, true
}

// startJob begins executing j (skipping over queued jobs whose deadline
// already expired — the server's runner does the same at dequeue). The
// root task is pushed onto w's deque; sleeper policies re-take their home
// share, and a GO push wakes a parked worker, so someone always comes for
// it.
func (m *Machine) startJob(p *Program, j *openJob, w *Worker) {
	for j.DeadlineUS > 0 && m.now > j.AtUS+j.DeadlineUS {
		m.trace("p%d job %d expired after %dµs queued", p.id, j.idx, m.now-j.AtUS)
		m.jobDone(p, j, JobExpired)
		if m.stopped || m.pendingLen(p) == 0 {
			p.curJob = nil
			p.runActive = false
			return
		}
		j, _ = m.popPending(p)
	}
	p.curJob = j
	j.startUS = m.now
	p.graph = j.Graph
	p.runActive = true
	p.runStart = m.now
	m.trace("p%d job %d starts after %dµs queued", p.id, j.idx, m.now-j.AtUS)
	m.regrabHome(p)
	m.pushTask(w, &simTask{node: j.Graph.Root})
	// The push came from the arrival event, not a running worker, so the
	// target itself may be mid-spin; a nil pusher notifies every spinner,
	// including w (dedup via notifyPending keeps this cheap).
	m.notifySpinners(p, nil)
}

// jobFinished is finishRun's open-loop tail: record the outcome and start
// the next queued job on the finishing worker.
func (m *Machine) jobFinished(p *Program, w *Worker) {
	j := p.curJob
	p.curJob = nil
	p.runActive = false
	// Fold the run into the service EWMA (α = 1/4, the server's
	// observeRun on the virtual clock). Legacy admission never reads it.
	if d := m.now - j.startUS; d >= 0 {
		if p.svcEWMAUS == 0 {
			p.svcEWMAUS = d
		} else {
			p.svcEWMAUS += (d - p.svcEWMAUS) / 4
		}
		if m.svcFallbackUS == 0 {
			m.svcFallbackUS = d
		} else {
			m.svcFallbackUS += (d - m.svcFallbackUS) / 4
		}
	}
	st := JobOK
	if j.DeadlineUS > 0 && m.now > j.AtUS+j.DeadlineUS {
		st = JobLate
	}
	m.jobDone(p, j, st)
	if m.stopped || m.pendingLen(p) == 0 {
		return
	}
	next, _ := m.popPending(p)
	m.startJob(p, next, w)
}

// jobDone records a terminal outcome and stops the machine when the last
// job resolves. In federated mode a shed job is handed back to the
// federation driver for spill-over instead of being logged as terminal,
// and the machine never self-stops — the driver owns termination.
func (m *Machine) jobDone(p *Program, j *openJob, st JobStatus) {
	if m.fedShed != nil && st == JobShed {
		m.jobsOutstanding--
		m.fedShed(p, j)
		return
	}
	done := int64(-1)
	if st == JobOK || st == JobLate {
		done = m.now
	}
	m.jobLog = append(m.jobLog, JobOutcome{
		Prog:    p.idx,
		Index:   j.idx,
		AtUS:    j.AtUS,
		Status:  st,
		StartUS: j.startUS,
		DoneUS:  done,
	})
	m.jobsOutstanding--
	if m.jobsOutstanding == 0 && !m.fedMode {
		m.stopped = true
	}
}

// sortedJobLog returns the outcome log in canonical (program, index)
// order.
func (m *Machine) sortedJobLog() []JobOutcome {
	log := append([]JobOutcome(nil), m.jobLog...)
	sort.Slice(log, func(i, k int) bool {
		if log[i].Prog != log[k].Prog {
			return log[i].Prog < log[k].Prog
		}
		return log[i].Index < log[k].Index
	})
	return log
}
