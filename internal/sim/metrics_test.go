package sim

import (
	"strings"
	"testing"
)

func TestProgResultEmpty(t *testing.T) {
	var r ProgResult
	if r.MeanRunUS() != 0 {
		t.Fatal("MeanRunUS of empty result")
	}
	if r.Runs() != 0 {
		t.Fatal("Runs of empty result")
	}
}

func TestProgResultMean(t *testing.T) {
	r := ProgResult{Stats: ProgStats{RunTimesUS: []int64{100, 200, 300}}}
	if got := r.MeanRunUS(); got != 200 {
		t.Fatalf("MeanRunUS = %v", got)
	}
	if r.Runs() != 3 {
		t.Fatalf("Runs = %d", r.Runs())
	}
}

func TestUtilizationEmptyResults(t *testing.T) {
	var r Results
	if r.Utilization() != 0 {
		t.Fatal("Utilization of empty results")
	}
}

func TestTimelineRendering(t *testing.T) {
	r := Results{Samples: []Sample{
		{AtUS: 1, Running: []int32{0, 1, 12}},
		{AtUS: 2, Running: []int32{2, 0, 9}},
	}}
	art := r.TimelineASCII(0)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d:\n%s", len(lines), art)
	}
	// Core 0: idle then p2; core 1: p1 then idle; core 2: '+' for >9, then 9.
	if !strings.HasSuffix(lines[0], ".2") {
		t.Errorf("row 0 = %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], "1.") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], "+9") {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestTimelineDownsample(t *testing.T) {
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i] = Sample{AtUS: int64(i), Running: []int32{1}}
	}
	r := Results{Samples: samples}
	art := r.TimelineASCII(10)
	line := strings.TrimRight(strings.Split(art, "\n")[0], "\n")
	// "cN   " prefix plus exactly 10 sample columns.
	if got := len(line) - len("c0   "); got != 10 {
		t.Fatalf("columns = %d, want 10 (%q)", got, line)
	}
}
