// Package sim is a deterministic discrete-event simulator of a
// multi-programmed multi-core machine executing work-stealing programs.
//
// It is the substrate substituting for the paper's 16-core Xeon testbed
// (see DESIGN.md §2): simulated cores run per-core round-robin queues of
// worker threads with a scheduling quantum and context-switch cost, a
// per-core cache-warmth model plus a per-socket LLC-sharing model, and the
// four scheduling policies the paper evaluates — ABP (time-sharing with
// yielding thieves), EP (static space-sharing equipartition), DWS and
// DWS-NC.
//
// Time is measured in microseconds of simulated wall clock; task work is
// expressed in microseconds of ideal (warm-cache, uncontended) execution.
// Given identical configuration and seed, a simulation is bit-for-bit
// reproducible.
package sim

import (
	"errors"
	"fmt"

	"dws/internal/deque"
)

// Policy selects the scheduling strategy for every program in a machine.
type Policy int

const (
	// ABP is the paper's baseline: every program keeps one worker per core
	// (time-sharing), and a worker that fails to steal yields. See
	// Config.StrongYield for the two yield interpretations.
	ABP Policy = iota
	// EP is static space-sharing: each program runs one worker on each of
	// its k/m home cores and never leaves them.
	EP
	// DWS is the paper's contribution: space-sharing plus demand-driven
	// core exchange through the core allocation table, with sleeping
	// thieves and a per-program coordinator.
	DWS
	// DWSNC is the DWS-NC ablation (§4.2): workers sleep and wake on
	// demand exactly as in DWS, but there is no core allocation table, so
	// nothing guarantees a core hosts a single active worker.
	DWSNC
	// BWS models the directed-yield core of Balanced Work Stealing (Ding
	// et al., EuroSys 2012 — the related-work baseline of §5): time-sharing
	// like ABP, but a thief that finds nothing to steal passes its core
	// directly to a co-resident worker that has work, instead of burning
	// its share.
	BWS
	// GO models the plain Go-scheduler baseline of the scenario suite:
	// goroutine-per-task on a shared runtime. Every program time-shares
	// every core like ABP, but a thief that runs dry parks (idle Ps park
	// instead of burning quanta in failed steals), and a task push wakes a
	// parked worker immediately (the runtime's wakep), with no coordinator
	// period and no core allocation table.
	GO
)

// String returns the policy name as used in the paper.
func (p Policy) String() string {
	switch p {
	case ABP:
		return "ABP"
	case EP:
		return "EP"
	case DWS:
		return "DWS"
	case DWSNC:
		return "DWS-NC"
	case BWS:
		return "BWS"
	case GO:
		return "GO"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes the simulated machine and scheduler constants.
type Config struct {
	// Cores is k, the number of hardware cores.
	Cores int
	// SocketSize is the number of cores sharing a last-level cache. Cores
	// [0,SocketSize) form socket 0, and so on. 0 means all cores share one
	// socket.
	SocketSize int
	// Policy is the scheduling policy for all programs.
	Policy Policy
	// Engine names the deque engine the configuration targets, mirroring
	// rt.Config.Engine so one config describes both substrates (the
	// conformance oracle threads the same engine through sim and live
	// runs). The zero value (deque.KindAuto) resolves through the
	// DWS_DEQUE_ENGINE environment variable and defaults to Chase–Lev;
	// unknown names are rejected by Validate. The event-loop simulator is
	// single-threaded, so its deques are plain slices and every engine is
	// behaviourally identical here — the field exists for validation,
	// reporting, and sim↔live config parity, not to change simulated
	// scheduling.
	Engine deque.Kind

	// QuantumUS is the OS time-slice on a core shared by several runnable
	// workers, in µs.
	QuantumUS int64
	// CtxSwitchUS is charged each time a core switches between different
	// workers.
	CtxSwitchUS int64
	// StealCostUS is the cost of one steal attempt (successful or not).
	StealCostUS int64
	// RemoteStealPenaltyUS is the extra latency of a successful steal that
	// crosses a socket boundary (the stolen task's cache lines migrate
	// across the interconnect). Charged on top of the per-attempt
	// StealCostUS; 0 on a single-socket machine by construction.
	RemoteStealPenaltyUS int64
	// SocketLatencyUS, when non-nil, generalizes RemoteStealPenaltyUS to a
	// full per-(src,dst) latency matrix: a successful steal whose victim
	// runs on socket src and whose thief runs on socket dst is charged
	// SocketLatencyUS[src][dst] µs on top of the per-attempt StealCostUS.
	// Diagonal entries price same-socket steals (the flat default charges
	// 0), so asymmetric interconnects — NUMA hops, inter-machine spill
	// links — are expressible. Must be square with one row per socket;
	// entries must be non-negative. nil preserves the flat
	// RemoteStealPenaltyUS behaviour bit for bit.
	SocketLatencyUS [][]int64
	// StealYieldUS is the pause a thief inserts between failed steal
	// attempts once it has scanned every victim without success (MIT Cilk
	// thieves yield in their steal loop). Together with TSleep it sets the
	// drought a DWS worker tolerates before sleeping:
	// ≈ TSleep × (StealCostUS + StealYieldUS).
	StealYieldUS int64
	// WakeLatencyUS is the delay between a coordinator waking a sleeping
	// worker and the worker becoming runnable.
	WakeLatencyUS int64

	// TSleep is the paper's T_SLEEP: a DWS/DWS-NC worker sleeps after more
	// than TSleep consecutive failed steals. 0 defaults to Cores.
	TSleep int
	// CoordPeriodUS is the paper's T: the coordinator wakes every
	// CoordPeriodUS µs. The paper suggests 10ms.
	CoordPeriodUS int64
	// CoordCostUS models the coordinator's own overhead: each tick charges
	// this much work to one of the program's active workers. Exposes the
	// "T too small" effect of §3.4.
	CoordCostUS int64

	// StrongYield selects the interpretation of the ABP yield. False (the
	// default) models Linux CFS reality — sched_yield barely demotes the
	// caller, so a workless thief keeps burning its fair share of the core
	// in failed steals (the resource waste §1 describes, and what the
	// paper measures). True models an idealised yield that immediately
	// passes the rest of the quantum to the next runnable worker.
	StrongYield bool

	// CachePenalty is the slowdown factor (≥1) a fully memory-bound
	// program suffers while refilling a cold per-core cache; scaled by the
	// workload's MemIntensity.
	CachePenalty float64
	// CacheWarmUS is how long a fully memory-bound program takes to
	// re-warm a core's cache after the core ran a different program.
	CacheWarmUS int64
	// LLCPenalty inflates execution time by LLCPenalty × MemIntensity per
	// additional distinct program concurrently executing on the same
	// socket (shared last-level cache and memory-bandwidth contention).
	LLCPenalty float64
	// SpinContention inflates execution time per spinning thief on the
	// same socket: failed steal attempts hammer the victims' deque cache
	// lines, so hoarded cores (large T_SLEEP) tax their neighbours — the
	// "resources wasted on useless steals" of §1.
	SpinContention float64

	// ArbiterPeriodUS, when positive, enables the QoS entitlement arbiter
	// under DWS: every ArbiterPeriodUS µs the machine folds each program's
	// demand (queued tasks, active workers) and declared weight into an
	// entitlement vector in the core allocation table, and coordinators
	// reclaim against their entitled home block instead of the static k/m
	// split. With equal weights and every program active the entitlements
	// equal the HomeCores split, so a run is bit-identical to an
	// arbiter-disabled one. 0 disables.
	ArbiterPeriodUS int64
	// Weights assigns each program an arbitration weight (nil = all 1).
	// Only meaningful with ArbiterPeriodUS > 0; when set, its length must
	// equal the number of programs.
	Weights []float64

	// NoLocality disables the topology awareness a multi-socket SocketSize
	// otherwise grants: entitled home blocks fall back to the flat
	// prefix-sum split and victim scans ignore socket boundaries — the
	// pre-locality baseline for A/B studies. The locality steal counters
	// and the remote-steal penalty still apply (they measure and price the
	// machine, not the policy).
	NoLocality bool

	// WorkSharing switches every program from per-worker deques with
	// stealing to one central per-program task pool (FIFO takes) — the
	// work-sharing model §4.4 claims DWS generalises to. The sleep/wake
	// rules and the coordinator work unchanged on top of it.
	WorkSharing bool

	// CoreSpeeds optionally gives each core a relative compute speed
	// (asymmetric multi-core, the §4.4/§6 extension). nil means all cores
	// run at speed 1. A program's wall time per unit of work on a core is
	// (1−MemIntensity)/speed + MemIntensity: slow cores hurt
	// compute-bound programs more than memory-bound ones.
	CoreSpeeds []float64
	// IntensityPlacement, with CoreSpeeds set and the DWS policy, applies
	// the §4.4 idea: the initial even allocation gives the most
	// memory-bound programs the slowest cores and the most compute-bound
	// programs the fastest.
	IntensityPlacement bool

	// Seed makes runs reproducible. Victim selection and free-core choice
	// derive from it.
	Seed int64
	// Debug enables machine-wide invariant verification after every
	// event (worker-state accounting, run-queue consistency, DWS core
	// exclusivity). Slow; intended for tests.
	Debug bool
	// MaxEvents aborts a simulation that exceeds this many events (a
	// safety valve against configuration bugs). 0 defaults to 200M.
	MaxEvents int64
}

// DefaultConfig returns the configuration used throughout the paper's
// reproduction: a 16-core machine of two 8-core sockets and the paper's
// suggested constants (T_SLEEP = k, T = 10 ms).
func DefaultConfig() Config {
	return Config{
		Cores:                16,
		SocketSize:           8,
		Policy:               DWS,
		QuantumUS:            6000,
		CtxSwitchUS:          10,
		StealCostUS:          5,
		RemoteStealPenaltyUS: 2,
		StealYieldUS:         400,
		WakeLatencyUS:        60,
		TSleep:               0, // defaults to Cores
		CoordPeriodUS:        10000,
		CoordCostUS:          5,
		CachePenalty:         2.0,
		CacheWarmUS:          2000,
		LLCPenalty:           0.25,
		SpinContention:       0.012,
		Seed:                 1,
	}
}

// Validation errors returned by Config.Validate and NewMachine.
var (
	ErrNoCores     = errors.New("sim: Cores must be positive")
	ErrNoPrograms  = errors.New("sim: at least one program is required")
	ErrTooManyProg = errors.New("sim: more programs than cores")
	ErrBadConfig   = errors.New("sim: invalid configuration")
)

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return ErrNoCores
	}
	if c.SocketSize <= 0 {
		c.SocketSize = c.Cores
	}
	eng, err := c.Engine.Resolve()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	c.Engine = eng
	if c.TSleep <= 0 {
		c.TSleep = c.Cores
	}
	if c.QuantumUS <= 0 || c.StealCostUS <= 0 {
		return fmt.Errorf("%w: QuantumUS and StealCostUS must be positive", ErrBadConfig)
	}
	if c.CtxSwitchUS < 0 || c.WakeLatencyUS < 0 || c.CoordCostUS < 0 ||
		c.StealYieldUS < 0 || c.RemoteStealPenaltyUS < 0 {
		return fmt.Errorf("%w: negative cost", ErrBadConfig)
	}
	if c.CoordPeriodUS <= 0 {
		c.CoordPeriodUS = 10000
	}
	if c.CachePenalty < 1 {
		return fmt.Errorf("%w: CachePenalty must be >= 1", ErrBadConfig)
	}
	if c.CacheWarmUS < 0 || c.LLCPenalty < 0 || c.SpinContention < 0 {
		return fmt.Errorf("%w: negative cache parameter", ErrBadConfig)
	}
	if c.CoreSpeeds != nil {
		if len(c.CoreSpeeds) != c.Cores {
			return fmt.Errorf("%w: CoreSpeeds has %d entries for %d cores",
				ErrBadConfig, len(c.CoreSpeeds), c.Cores)
		}
		for _, s := range c.CoreSpeeds {
			if s <= 0 {
				return fmt.Errorf("%w: non-positive core speed %v", ErrBadConfig, s)
			}
		}
	}
	if c.SocketLatencyUS != nil {
		sockets := (c.Cores + c.SocketSize - 1) / c.SocketSize
		if len(c.SocketLatencyUS) != sockets {
			return fmt.Errorf("%w: SocketLatencyUS has %d rows for %d sockets",
				ErrBadConfig, len(c.SocketLatencyUS), sockets)
		}
		for i, row := range c.SocketLatencyUS {
			if len(row) != sockets {
				return fmt.Errorf("%w: SocketLatencyUS row %d has %d entries for %d sockets",
					ErrBadConfig, i, len(row), sockets)
			}
			for j, v := range row {
				if v < 0 {
					return fmt.Errorf("%w: negative SocketLatencyUS[%d][%d]", ErrBadConfig, i, j)
				}
			}
		}
	}
	if c.ArbiterPeriodUS < 0 {
		c.ArbiterPeriodUS = 0
	}
	if c.ArbiterPeriodUS > 0 && c.Policy != DWS {
		return fmt.Errorf("%w: ArbiterPeriodUS requires the DWS policy (entitlements live in the core table)", ErrBadConfig)
	}
	for _, w := range c.Weights {
		if w <= 0 {
			return fmt.Errorf("%w: non-positive program weight %v", ErrBadConfig, w)
		}
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 200_000_000
	}
	return nil
}

// stealPenalty returns the latency surcharge of a successful steal whose
// victim runs on socket src and whose thief runs on socket dst.
func (c *Config) stealPenalty(src, dst int) int64 {
	if c.SocketLatencyUS != nil {
		return c.SocketLatencyUS[src][dst]
	}
	if src != dst {
		return c.RemoteStealPenaltyUS
	}
	return 0
}

// speed returns core's relative compute speed.
func (c *Config) speed(core int) float64 {
	if c.CoreSpeeds == nil {
		return 1
	}
	return c.CoreSpeeds[core]
}
