package sim

import (
	"fmt"
	"strings"

	"dws/internal/stats"
)

// ProgStats accumulates per-program counters over a simulation.
type ProgStats struct {
	// RunTimesUS holds the duration of every completed run, in simulated µs.
	RunTimesUS []int64
	// RunStartsUS holds each completed run's start time, aligned with
	// RunTimesUS (used to split runs around co-runner arrivals).
	RunStartsUS []int64
	// Steals and FailedSteals count steal attempts.
	Steals, FailedSteals int64
	// LocalSteals / RemoteSteals split the successful steals by whether
	// thief and victim shared a socket. On a flat machine RemoteSteals is
	// 0; the split is measured even under Config.NoLocality (that is the
	// point of the A/B study).
	LocalSteals, RemoteSteals int64
	// Sleeps / Wakes / Evictions count worker state transitions.
	Sleeps, Wakes, Evictions int64
	// Claims / Reclaims count core-allocation-table operations by the
	// coordinator.
	Claims, Reclaims int64
	// CoordTicks counts coordinator passes.
	CoordTicks int64
	// WorkUS is ideal work executed (µs of warm-cache work units).
	WorkUS float64
	// SpinUS is wall time burned in the steal loop.
	SpinUS int64
}

// ProgResult is the outcome of one program in a simulation.
type ProgResult struct {
	// Name is the workload's name.
	Name string
	// Stats are the raw counters, including all run times.
	Stats ProgStats
}

// MeanRunUS returns the mean completed-run duration in µs (0 if no run
// completed).
func (r ProgResult) MeanRunUS() float64 {
	if len(r.Stats.RunTimesUS) == 0 {
		return 0
	}
	xs := make([]float64, len(r.Stats.RunTimesUS))
	for i, t := range r.Stats.RunTimesUS {
		xs[i] = float64(t)
	}
	return stats.Mean(xs)
}

// Runs returns the number of completed runs.
func (r ProgResult) Runs() int { return len(r.Stats.RunTimesUS) }

// Sample is one core-occupancy snapshot (see RunOpts.SampleUS).
type Sample struct {
	// AtUS is the simulated time of the snapshot.
	AtUS int64
	// Running[c] is the ID (1-based) of the program whose worker is
	// scheduled on core c, or 0 if the core is idle.
	Running []int32
}

// Results is the outcome of a Machine.Run.
type Results struct {
	// EndTimeUS is the simulated time at which the machine stopped.
	EndTimeUS int64
	// Events is the number of processed simulation events.
	Events int64
	// Programs holds one entry per program, in launch order.
	Programs []ProgResult
	// CoreBusyUS is, per core, the wall time a worker was scheduled.
	CoreBusyUS []int64
	// Samples holds the core-occupancy timeline when sampling was on.
	Samples []Sample
	// Jobs holds every open-loop job outcome (Machine.RunOpen), sorted by
	// program then stream index; nil for closed-loop runs.
	Jobs []JobOutcome
}

// TimelineASCII renders the occupancy samples as one row per core, one
// column per sample: '.' idle, '1'–'9' the running program. width caps
// the number of columns (0 = all samples).
func (r *Results) TimelineASCII(width int) string {
	if len(r.Samples) == 0 {
		return ""
	}
	samples := r.Samples
	if width > 0 && len(samples) > width {
		// Down-sample evenly.
		picked := make([]Sample, width)
		for i := range picked {
			picked[i] = samples[i*len(samples)/width]
		}
		samples = picked
	}
	cores := len(samples[0].Running)
	var sb strings.Builder
	for c := 0; c < cores; c++ {
		fmt.Fprintf(&sb, "c%-3d ", c)
		for _, s := range samples {
			id := s.Running[c]
			switch {
			case id == 0:
				sb.WriteByte('.')
			case id <= 9:
				sb.WriteByte(byte('0' + id))
			default:
				sb.WriteByte('+')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Utilization returns the fraction of core-time that had a worker
// scheduled (including spinning thieves).
func (r *Results) Utilization() float64 {
	if r.EndTimeUS == 0 || len(r.CoreBusyUS) == 0 {
		return 0
	}
	var busy int64
	for _, b := range r.CoreBusyUS {
		busy += b
	}
	return float64(busy) / (float64(r.EndTimeUS) * float64(len(r.CoreBusyUS)))
}

func (r *Results) String() string {
	s := fmt.Sprintf("t=%dµs util=%.2f", r.EndTimeUS, r.Utilization())
	for _, p := range r.Programs {
		s += fmt.Sprintf(" | %s: %d runs, mean %.0fµs", p.Name, p.Runs(), p.MeanRunUS())
	}
	return s
}

// results snapshots the machine state into a Results.
func (m *Machine) results() *Results {
	r := &Results{EndTimeUS: m.now, Events: m.nEv, Samples: m.samples}
	for _, c := range m.cores {
		busy := c.busyUS
		if c.cur != nil {
			busy += m.now - c.busySince
		}
		r.CoreBusyUS = append(r.CoreBusyUS, busy)
	}
	for _, p := range m.progs {
		r.Programs = append(r.Programs, ProgResult{
			Name:  p.name,
			Stats: p.stats,
		})
	}
	if m.jobMode {
		r.Jobs = m.sortedJobLog()
	}
	return r
}
