package sim

import (
	"testing"

	"dws/internal/deque"
	"dws/internal/task"
	"dws/internal/workload"
)

func engineTestGraph(t *testing.T) *task.Graph {
	t.Helper()
	b, err := workload.ByID("p-1")
	if err != nil {
		t.Fatal(err)
	}
	return b.Make(0.05)
}

// TestConfigEngineValidation pins the sim side of the engine plumbing:
// defaults resolve to Chase–Lev, the environment override and explicit
// kinds work, unknown names are rejected, and a machine reports its
// resolved engine.
func TestConfigEngineValidation(t *testing.T) {
	t.Run("default-chaselev", func(t *testing.T) {
		t.Setenv(deque.EngineEnv, "")
		cfg := DefaultConfig()
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		if cfg.Engine != deque.KindChaseLev {
			t.Fatalf("default engine = %v, want chaselev", cfg.Engine)
		}
	})
	t.Run("env-override", func(t *testing.T) {
		t.Setenv(deque.EngineEnv, "relaxed")
		cfg := DefaultConfig()
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		if cfg.Engine != deque.KindRelaxed {
			t.Fatalf("engine with %s=relaxed = %v, want relaxed", deque.EngineEnv, cfg.Engine)
		}
	})
	t.Run("explicit-beats-env", func(t *testing.T) {
		t.Setenv(deque.EngineEnv, "relaxed")
		cfg := DefaultConfig()
		cfg.Engine = deque.KindLocked
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		if cfg.Engine != deque.KindLocked {
			t.Fatalf("explicit engine = %v, want locked", cfg.Engine)
		}
	})
	t.Run("bad-env-rejected", func(t *testing.T) {
		t.Setenv(deque.EngineEnv, "warp-drive")
		cfg := DefaultConfig()
		if err := cfg.Validate(); err == nil {
			t.Fatal("Validate accepted an unknown engine from the environment")
		}
	})
	t.Run("bad-kind-rejected", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Engine = deque.Kind(99)
		if err := cfg.Validate(); err == nil {
			t.Fatal("Validate accepted Kind(99)")
		}
	})
	t.Run("machine-reports-engine", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Engine = deque.KindRelaxed
		m, err := NewMachine(cfg, []*task.Graph{engineTestGraph(t)})
		if err != nil {
			t.Fatal(err)
		}
		if m.Engine() != deque.KindRelaxed {
			t.Fatalf("Machine.Engine() = %v, want relaxed", m.Engine())
		}
	})
}

// TestSimEngineInvariance pins the documented property that the
// single-threaded simulator is engine-invariant: identical config and seed
// produce bit-identical results whichever engine the config names.
func TestSimEngineInvariance(t *testing.T) {
	run := func(kind deque.Kind) *Results {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Cores, cfg.SocketSize = 4, 4
		cfg.Engine = kind
		m, err := NewMachine(cfg, []*task.Graph{engineTestGraph(t)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(RunOpts{TargetRuns: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(deque.KindChaseLev)
	for _, kind := range []deque.Kind{deque.KindLocked, deque.KindRelaxed} {
		got := run(kind)
		if got.EndTimeUS != base.EndTimeUS || got.Events != base.Events {
			t.Fatalf("%v diverged from chaselev: end %d vs %d, events %d vs %d",
				kind, got.EndTimeUS, base.EndTimeUS, got.Events, base.Events)
		}
	}
}
