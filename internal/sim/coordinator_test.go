package sim

import (
	"strings"
	"testing"

	"dws/internal/task"
)

// wideGraph always wants more cores than its share.
func wideGraph() *task.Graph {
	return &task.Graph{Name: "wide", Root: task.DivideAndConquer(8, 2, 2000, 10, 20)}
}

// narrowGraph is dominated by one long serial lump; it cannot use most of
// its share.
func narrowGraph() *task.Graph {
	return &task.Graph{Name: "narrow", Root: task.Imbalanced(600_000, 0.8, 16)}
}

// TestDWSReleasesAndClaims: co-running wide+narrow under DWS, the narrow
// program releases cores (sleeps) and the wide one takes them (claims),
// pushing the wide program's core usage past its even share.
func TestDWSReleasesAndClaims(t *testing.T) {
	m := mustMachine(t, debugConfig(DWS), []*task.Graph{wideGraph(), narrowGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	wide, narrow := res.Programs[0].Stats, res.Programs[1].Stats
	if narrow.Sleeps == 0 {
		t.Error("narrow program never put a worker to sleep")
	}
	if wide.Claims == 0 {
		t.Error("wide program never claimed a free core")
	}
	if wide.Wakes == 0 {
		t.Error("wide program never woke a worker")
	}
}

// TestDWSReclaimAndEvict: after the wide program borrows the narrow one's
// cores, the narrow program's demand bursts force reclaims, which evict
// the borrower's workers.
func TestDWSReclaimAndEvict(t *testing.T) {
	// Narrow program alternates serial phases with wide bursts, so its
	// coordinator must take cores back repeatedly.
	bursty := &task.Graph{Name: "bursty", Root: func() *task.Node {
		var stages []task.Stage
		for i := 0; i < 10; i++ {
			stages = append(stages, task.Stage{Work: 30_000, Children: []*task.Node{task.Leaf(1000)}})
			wide := make([]*task.Node, 32)
			for j := range wide {
				wide[j] = task.Leaf(2500)
			}
			stages = append(stages, task.Stage{Work: 10, Children: wide})
		}
		return task.Phases(stages...)
	}()}
	m := mustMachine(t, debugConfig(DWS), []*task.Graph{wideGraph(), bursty})
	res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	wide, b := res.Programs[0].Stats, res.Programs[1].Stats
	if b.Reclaims == 0 {
		t.Errorf("bursty program never reclaimed a home core (stats: %+v)", b)
	}
	if wide.Evictions == 0 {
		t.Errorf("wide program was never evicted (stats: %+v)", wide)
	}
}

// TestDWSNCNoTableActivity: DWS-NC sleeps and wakes but never touches the
// allocation table.
func TestDWSNCNoTableActivity(t *testing.T) {
	m := mustMachine(t, debugConfig(DWSNC), []*task.Graph{wideGraph(), narrowGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Programs {
		if p.Stats.Claims != 0 || p.Stats.Reclaims != 0 || p.Stats.Evictions != 0 {
			t.Fatalf("%s: table activity under DWS-NC: %+v", p.Name, p.Stats)
		}
	}
	if res.Programs[1].Stats.Sleeps == 0 {
		t.Error("narrow program never slept under DWS-NC")
	}
	if res.Programs[0].Stats.Wakes == 0 && res.Programs[1].Stats.Wakes == 0 {
		t.Error("no wakes under DWS-NC")
	}
}

// TestEPNeverSleepsOrSteals: EP workers have no sleep mechanism and only
// steal within their partition.
func TestEPNeverSleepsOrSteals(t *testing.T) {
	m := mustMachine(t, debugConfig(EP), []*task.Graph{wideGraph(), narrowGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Programs {
		st := p.Stats
		if st.Sleeps != 0 || st.Wakes != 0 || st.Claims != 0 || st.Reclaims != 0 || st.Evictions != 0 {
			t.Fatalf("%s: DWS machinery active under EP: %+v", p.Name, st)
		}
	}
}

// TestABPNoCoordinator: ABP has neither sleeps nor coordinator ticks.
func TestABPNoCoordinator(t *testing.T) {
	m := mustMachine(t, debugConfig(ABP), []*task.Graph{wideGraph(), narrowGraph()})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Programs {
		if p.Stats.CoordTicks != 0 || p.Stats.Sleeps != 0 {
			t.Fatalf("%s: coordinator/sleep active under ABP: %+v", p.Name, p.Stats)
		}
	}
}

// TestCoordinatorTicksCounted: DWS coordinators tick roughly every T.
func TestCoordinatorTicksCounted(t *testing.T) {
	g := wideGraph()
	cfg := debugConfig(DWS)
	cfg.CoordPeriodUS = 5000
	m := mustMachine(t, cfg, []*task.Graph{g})
	res, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 120_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ticks := res.Programs[0].Stats.CoordTicks
	expect := res.EndTimeUS / 5000
	if ticks < expect/2 || ticks > expect+2 {
		t.Fatalf("coordinator ticked %d times over %dµs (expected ≈%d)",
			ticks, res.EndTimeUS, expect)
	}
}

// TestTraceEmitsProtocolEvents: the Trace hook reports the protocol's
// vocabulary during a DWS co-run.
func TestTraceEmitsProtocolEvents(t *testing.T) {
	m := mustMachine(t, debugConfig(DWS), []*task.Graph{wideGraph(), narrowGraph()})
	var sb strings.Builder
	m.Trace = func(ts int64, format string, args ...any) {
		sb.WriteString(format)
		sb.WriteByte('\n')
	}
	if _, err := m.Run(RunOpts{TargetRuns: 2, HorizonUS: 120_000_000_000}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sleeps", "claims", "coord", "run"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q events", want)
		}
	}
}

// TestStealsOccur: work actually migrates between workers.
func TestStealsOccur(t *testing.T) {
	g := &task.Graph{Name: "g", Root: task.ParallelFor(128, 1500)}
	for _, pol := range []Policy{ABP, EP, DWS, DWSNC} {
		m := mustMachine(t, debugConfig(pol), []*task.Graph{g})
		res, err := m.Run(RunOpts{TargetRuns: 1, HorizonUS: 60_000_000_000})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Programs[0].Stats.Steals == 0 {
			t.Errorf("%v: no steals for a 128-leaf parallel loop", pol)
		}
	}
}
