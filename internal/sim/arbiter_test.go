package sim

import (
	"reflect"
	"strings"
	"testing"

	"dws/internal/task"
)

func arbGraphs() []*task.Graph {
	a := &task.Graph{Name: "a", Root: task.DivideAndConquer(7, 2, 1200, 10, 20), MemIntensity: 0.4}
	b := &task.Graph{Name: "b", Root: task.DivideAndConquer(7, 2, 1200, 10, 20), MemIntensity: 0.4}
	return []*task.Graph{a, b}
}

// TestArbiterEqualWeightsBitIdentical pins the degenerate-exactness
// contract: with equal weights and every program active the arbiter
// publishes exactly the static HomeCores split and charges no simulated
// cost, so the run is bit-identical to an arbiter-disabled one (this is
// what keeps the schedcheck conformance oracle green with arbitration on).
func TestArbiterEqualWeightsBitIdentical(t *testing.T) {
	run := func(arbPeriod int64) *Results {
		cfg := DefaultConfig()
		cfg.Policy = DWS
		cfg.Seed = 7
		cfg.ArbiterPeriodUS = arbPeriod
		cfg.Debug = true
		m := mustMachine(t, cfg, arbGraphs())
		res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 60_000_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if arbPeriod > 0 {
			ents := m.Entitlements()
			if ents[0] != 8 || ents[1] != 8 {
				t.Fatalf("equal-weight entitlements = %v, want [8 8 ...]", ents)
			}
		}
		return res
	}
	static, arbitrated := run(0), run(1000)
	if static.EndTimeUS != arbitrated.EndTimeUS {
		t.Fatalf("end time diverged: static %d vs arbitrated %d",
			static.EndTimeUS, arbitrated.EndTimeUS)
	}
	if !reflect.DeepEqual(static.Programs, arbitrated.Programs) {
		t.Fatal("per-program results diverged under an equal-weight arbiter")
	}
}

// TestArbiterWeightedShiftsEntitlements: a 2:1 weighted co-run of two
// identical saturating programs must settle on the weighted apportionment
// (5, 3 of 16 → 10.67, 5.33 → floors at 5/2 → (11, 5)), and the heavy
// program must finish its runs faster.
func TestArbiterWeightedShiftsEntitlements(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DWS
	cfg.Seed = 7
	cfg.ArbiterPeriodUS = 1000
	cfg.Weights = []float64{2, 1}
	cfg.Debug = true
	m := mustMachine(t, cfg, arbGraphs())

	var entLines []string
	m.Trace = func(timeUS int64, format string, args ...any) {
		if strings.HasPrefix(format, "p%d entitle") {
			entLines = append(entLines, format)
		}
	}
	res, err := m.Run(RunOpts{TargetRuns: 3, HorizonUS: 60_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ents := m.Entitlements()
	if ents[0] != 11 || ents[1] != 5 {
		t.Fatalf("2:1 entitlements = %v, want [11 5 ...]", ents)
	}
	if len(entLines) == 0 {
		t.Fatal("no entitle trace lines emitted")
	}
	heavy := res.Programs[0].MeanRunUS()
	light := res.Programs[1].MeanRunUS()
	if heavy >= light {
		t.Fatalf("weight-2 program mean run %v ≥ weight-1 program %v", heavy, light)
	}
}

func TestArbiterRequiresDWSSim(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = EP
	cfg.ArbiterPeriodUS = 1000
	if err := cfg.Validate(); err == nil {
		t.Fatal("ArbiterPeriodUS accepted under EP")
	}
}

func TestArbiterWeightsLengthMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DWS
	cfg.ArbiterPeriodUS = 1000
	cfg.Weights = []float64{2, 1, 1}
	if _, err := NewMachine(cfg, arbGraphs()); err == nil {
		t.Fatal("weight/program count mismatch accepted")
	}
}
