// Command dwsd is the DWS job-serving daemon: a multi-tenant HTTP service
// hosting one live rt.System. Tenants submit kernel jobs over POST
// /v1/jobs; each tenant is a co-running work-stealing program, so served
// jobs contend for cores under the configured policy exactly as the
// paper's co-running programs do.
//
// Endpoints: POST /v1/jobs, GET /v1/tenants, DELETE /v1/tenants/{name},
// GET /v1/info, GET /healthz, GET /metrics (Prometheus text).
//
// Example:
//
//	dwsd -addr :8080 -cores 8 -policy DWS -tenants 4
//	curl -s localhost:8080/v1/jobs -d '{"tenant":"alice","kernel":"FFT","size":0.25}'
//
// SIGINT/SIGTERM drains gracefully: admission stops, queued jobs finish,
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dws/internal/deque"
	"dws/internal/rt"
	"dws/internal/server"
	"dws/internal/topo"
)

// topologyFromFlag resolves the -socket-size flag: 0 keeps the flat
// (locality-free) map, a negative value auto-detects the host's sockets
// from sysfs (degrading to flat when the tree is absent), and a positive
// value models uniform sockets of that many cores.
func topologyFromFlag(socketSize, cores int) *topo.Topology {
	switch {
	case socketSize == 0:
		return nil
	case socketSize < 0:
		return topo.Detect(cores)
	default:
		return topo.Uniform(cores, socketSize)
	}
}

// engineFromFlag resolves the -engine flag: an empty value falls back to
// DWS_DEQUE_ENGINE and then Chase–Lev; unknown names are rejected before
// anything starts.
func engineFromFlag(name string) (deque.Kind, error) {
	k, err := deque.ParseKind(name)
	if err != nil {
		return 0, err
	}
	return k.Resolve()
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cores    = flag.Int("cores", 8, "core slots k (sets GOMAXPROCS)")
		policy   = flag.String("policy", "DWS", "ABP|EP|DWS|DWS-NC")
		tenants  = flag.Int("tenants", 0, "max co-running tenants m (0 = cores)")
		queue    = flag.Int("queue", 16, "per-tenant admission queue depth")
		gqueue   = flag.Int("global-queue", 0, "global WFQ backlog cap across tenants (0 = tenants*queue/2; negative disables shedding)")
		earlyRej = flag.Bool("early-reject", true, "reject jobs whose predicted queue wait exceeds their deadline")
		deadline = flag.Duration("deadline", 30*time.Second, "default per-job deadline")
		defSize  = flag.Float64("default-size", 0.25, "default job input scale")
		maxSize  = flag.Float64("max-size", 1.0, "maximum job input scale")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		period   = flag.Duration("period", 0, "coordinator period T (0 = rt default, 10ms)")
		leaseTTL = flag.Duration("lease-ttl", 0, "core-table lease expiry for wedged-tenant eviction (0 = 10×period)")
		arbiter  = flag.Duration("arbiter-period", 0, "QoS arbitration period, DWS only (0 = default 50ms; negative disables)")
		engine   = flag.String("engine", "", "deque engine: chaselev|locked|relaxed (empty = $DWS_DEQUE_ENGINE, then chaselev)")
		socket   = flag.Int("socket-size", 0, "cores per socket for locality-aware placement (0 = flat/off; negative = auto-detect from sysfs)")
	)
	flag.Parse()

	pol, err := rt.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("dwsd: %v", err)
	}
	eng, err := engineFromFlag(*engine)
	if err != nil {
		log.Fatalf("dwsd: %v", err)
	}
	runtime.GOMAXPROCS(*cores)
	if *tenants <= 0 {
		*tenants = *cores
	}

	s, err := server.New(server.Config{
		Cores:            *cores,
		Policy:           pol,
		Engine:           eng,
		Topology:         topologyFromFlag(*socket, *cores),
		MaxTenants:       *tenants,
		QueueDepth:       *queue,
		GlobalQueueDepth: *gqueue,
		NoEarlyReject:    !*earlyRej,
		DefaultDeadline:  *deadline,
		DefaultSize:      *defSize,
		MaxSize:          *maxSize,
		CoordPeriod:      *period,
		LeaseTTL:         *leaseTTL,
		ArbiterPeriod:    *arbiter,
	})
	if err != nil {
		log.Fatalf("dwsd: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	topoLabel := "flat"
	if tp := topologyFromFlag(*socket, *cores); tp != nil && !tp.Flat() {
		topoLabel = tp.String()
	}
	log.Printf("dwsd: serving on %s (policy=%v engine=%v cores=%d tenants≤%d queue=%d topo=%s)",
		*addr, pol, eng, *cores, *tenants, *queue, topoLabel)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("dwsd: %v", err)
	case sig := <-sigCh:
		log.Printf("dwsd: %v — draining (budget %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop taking new connections, let in-flight requests finish, and
	// drain the admission queues.
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("dwsd: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dwsd: http shutdown: %v", err)
	}
	fmt.Println("dwsd: drained, bye")
}
