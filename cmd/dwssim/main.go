// Command dwssim runs one simulated scenario — any subset of the Table 2
// benchmarks co-running under one policy — with every machine and
// scheduler knob exposed, and optional event tracing.
//
// Examples:
//
//	dwssim -bench p-1,p-8 -policy DWS
//	dwssim -bench p-6 -policy ABP -runs 6
//	dwssim -bench p-1,p-8 -policy DWS -tsleep 128 -trace | head -100
//
// With -scenario, dwssim instead replays a scenario trace open-loop on
// the virtual clock — a catalog name (see internal/scenario) or a
// .jsonl/.csv trace file — under the configured machine and policy:
//
//	dwssim -scenario bursty-pareto -policy GO
//	dwssim -scenario trace.jsonl -cores 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dws/internal/deque"
	"dws/internal/scenario"
	"dws/internal/sim"
	"dws/internal/task"
	"dws/internal/trace"
	"dws/internal/workload"
)

func main() {
	var (
		benchIDs  = flag.String("bench", "p-1,p-8", "comma-separated Table 2 IDs (p-1..p-8)")
		policy    = flag.String("policy", "DWS", "ABP|EP|DWS|DWS-NC|BWS|GO")
		scenName  = flag.String("scenario", "", "replay a catalog scenario or trace file instead of -bench (closed loop)")
		shardsN   = flag.Int("shards", 0, "scenario mode: fan the trace across K simulated federated shards (0 = single machine)")
		spillName = flag.String("spill", "next", "federated scenario mode: spill policy on shard refusal (none|random|next)")
		runs      = flag.Int("runs", 4, "completed runs per program")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		showTrace = flag.Bool("trace", false, "print scheduling events to stderr")
		traceOut  = flag.String("trace-jsonl", "", "write typed scheduling events as JSONL to this file")
		timeline  = flag.Bool("timeline", false, "print an ASCII core-occupancy timeline")
		dot       = flag.Bool("dot", false, "dump the benchmark task graphs as Graphviz DOT and exit")

		cores   = flag.Int("cores", 16, "cores")
		sockets = flag.Int("socket", 8, "cores per socket")
		quantum = flag.Int64("quantum", 6000, "OS quantum (µs)")
		steal   = flag.Int64("steal", 5, "steal attempt cost (µs)")
		yield   = flag.Int64("yield", 400, "thief backoff between failed attempts (µs)")
		wake    = flag.Int64("wake", 60, "worker wake latency (µs)")
		tsleep  = flag.Int("tsleep", 0, "T_SLEEP (0 = cores)")
		coord   = flag.Int64("coord", 10000, "coordinator period T (µs)")
		seed    = flag.Int64("seed", 1, "seed")
		strongY = flag.Bool("strongyield", false, "use the idealised ABP yield")
		penalty = flag.Float64("cachepenalty", 2.0, "cold-cache slowdown factor")
		warm    = flag.Int64("cachewarm", 2000, "cache warm-up time (µs)")
		llc     = flag.Float64("llc", 0.25, "LLC contention penalty per sharer")
		engine  = flag.String("engine", "", "deque engine: chaselev|locked|relaxed (empty = $DWS_DEQUE_ENGINE, then chaselev)")
	)
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	eng, err := engineFromFlag(*engine)
	if err != nil {
		fatal(err)
	}

	if *scenName != "" {
		cfg := sim.DefaultConfig()
		cfg.Cores, cfg.SocketSize, cfg.Policy = *cores, *sockets, pol
		cfg.QuantumUS, cfg.StealCostUS, cfg.StealYieldUS = *quantum, *steal, *yield
		cfg.WakeLatencyUS, cfg.TSleep, cfg.CoordPeriodUS = *wake, *tsleep, *coord
		cfg.StrongYield = *strongY
		cfg.CachePenalty, cfg.CacheWarmUS, cfg.LLCPenalty = *penalty, *warm, *llc
		cfg.Seed = *seed
		cfg.Engine = eng
		if *shardsN > 0 {
			runFedScenario(*scenName, cfg, *shardsN, *spillName)
		} else {
			runScenario(*scenName, cfg)
		}
		return
	}

	var graphs []*task.Graph
	for _, id := range strings.Split(*benchIDs, ",") {
		b, err := workload.ByID(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		graphs = append(graphs, b.Make(*scale))
	}

	if *dot {
		for _, g := range graphs {
			if err := task.WriteDOT(os.Stdout, g); err != nil {
				fatal(err)
			}
		}
		return
	}

	cfg := sim.Config{
		Cores: *cores, SocketSize: *sockets, Policy: pol, Engine: eng,
		QuantumUS: *quantum, StealCostUS: *steal, StealYieldUS: *yield,
		WakeLatencyUS: *wake, TSleep: *tsleep, CoordPeriodUS: *coord,
		CoordCostUS: 5, StrongYield: *strongY,
		CachePenalty: *penalty, CacheWarmUS: *warm, LLCPenalty: *llc,
		SpinContention: 0.012, Seed: *seed,
	}
	m, err := sim.NewMachine(cfg, graphs)
	if err != nil {
		fatal(err)
	}
	var rec *trace.Recorder
	switch {
	case *traceOut != "":
		rec = &trace.Recorder{Max: 2_000_000}
		m.Trace = rec.Hook()
	case *showTrace:
		m.Trace = func(ts int64, format string, args ...any) {
			fmt.Fprintf(os.Stderr, "%10dµs "+format+"\n", append([]any{ts}, args...)...)
		}
	}
	runOpts := sim.RunOpts{TargetRuns: *runs}
	if *timeline {
		runOpts.SampleUS = 2000
	}
	res, err := m.Run(runOpts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(summaryLine(pol, m.Engine(), *cores, *seed, res))
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d typed events to %s (%d dropped)\n", len(rec.Events), *traceOut, rec.Dropped)
	}
	if *timeline {
		fmt.Print(res.TimelineASCII(100))
	}
	for _, p := range res.Programs {
		st := p.Stats
		fmt.Printf("%-10s runs=%d mean=%.1fms steals=%d failed=%d sleeps=%d wakes=%d evict=%d claims=%d reclaims=%d spin=%.1fms\n",
			p.Name, p.Runs(), p.MeanRunUS()/1000,
			st.Steals, st.FailedSteals, st.Sleeps, st.Wakes, st.Evictions,
			st.Claims, st.Reclaims, float64(st.SpinUS)/1000)
	}
}

// runScenario replays a scenario trace (catalog name or .jsonl/.csv file)
// through the open-loop simulator and prints the per-tenant report.
func runScenario(name string, cfg sim.Config) {
	var (
		tr  *scenario.Trace
		err error
	)
	if strings.HasSuffix(name, ".jsonl") || strings.HasSuffix(name, ".csv") {
		tr, err = scenario.LoadFile(name)
	} else {
		tr, err = scenario.CompileByName(name)
	}
	if err != nil {
		fatal(err)
	}
	res, err := scenario.RunSim(tr, scenario.SimOptions{Config: cfg})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n\n%s", res, res.Table())
}

// runFedScenario replays a scenario trace through K simulated federated
// shards under the named spill policy and prints the report plus the
// spill ledger — the virtual-clock preview of a dwsrouter deployment.
func runFedScenario(name string, cfg sim.Config, shards int, spillName string) {
	var (
		tr  *scenario.Trace
		err error
	)
	if strings.HasSuffix(name, ".jsonl") || strings.HasSuffix(name, ".csv") {
		tr, err = scenario.LoadFile(name)
	} else {
		tr, err = scenario.CompileByName(name)
	}
	if err != nil {
		fatal(err)
	}
	spill, err := sim.ParseSpillPolicy(spillName)
	if err != nil {
		fatal(err)
	}
	fr, err := scenario.RunFedSim(tr, scenario.FedSimOptions{
		Config: cfg,
		Shards: shards,
		Spill:  spill,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n\n%s", fr.Result, fr.Result.Table())
	if len(fr.Fed.Spills) > 0 {
		fmt.Println("\nspills (from -> to):")
		for _, sp := range fr.Fed.Spills {
			fmt.Printf("  s%d -> s%d  %-6s %d\n", sp.From, sp.To, sp.Reason, sp.Count)
		}
	}
}

// engineFromFlag resolves the -engine flag: an empty value falls back to
// DWS_DEQUE_ENGINE and then Chase–Lev; unknown names are rejected before
// the simulation starts.
func engineFromFlag(name string) (deque.Kind, error) {
	k, err := deque.ParseKind(name)
	if err != nil {
		return 0, err
	}
	return k.Resolve()
}

// summaryLine formats the one-line run summary printed after -bench runs.
func summaryLine(pol sim.Policy, eng deque.Kind, cores int, seed int64, res *sim.Results) string {
	return fmt.Sprintf("policy=%v engine=%v cores=%d seed=%d simulated=%.3fs events=%d util=%.2f",
		pol, eng, cores, seed, float64(res.EndTimeUS)/1e6, res.Events, res.Utilization())
}

func parsePolicy(s string) (sim.Policy, error) {
	switch strings.ToUpper(s) {
	case "ABP":
		return sim.ABP, nil
	case "EP":
		return sim.EP, nil
	case "DWS":
		return sim.DWS, nil
	case "DWS-NC", "DWSNC":
		return sim.DWSNC, nil
	case "BWS":
		return sim.BWS, nil
	case "GO":
		return sim.GO, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dwssim: %v\n", err)
	os.Exit(1)
}
