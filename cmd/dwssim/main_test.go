package main

import (
	"strings"
	"testing"

	"dws/internal/deque"
	"dws/internal/sim"
)

// TestEngineFromFlag pins the -engine flag contract: unknown names are
// rejected before the simulation starts, the empty flag defaults to
// Chase–Lev, and DWS_DEQUE_ENGINE fills in when the flag is unset.
func TestEngineFromFlag(t *testing.T) {
	t.Setenv(deque.EngineEnv, "")
	cases := []struct {
		in      string
		want    deque.Kind
		wantErr bool
	}{
		{"", deque.KindChaseLev, false},
		{"chaselev", deque.KindChaseLev, false},
		{"LOCKED", deque.KindLocked, false},
		{"relaxed", deque.KindRelaxed, false},
		{"warp-drive", 0, true},
	}
	for _, c := range cases {
		got, err := engineFromFlag(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("engineFromFlag(%q) accepted an unknown engine", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("engineFromFlag(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("engineFromFlag(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	t.Run("env-fallback", func(t *testing.T) {
		t.Setenv(deque.EngineEnv, "relaxed")
		got, err := engineFromFlag("")
		if err != nil {
			t.Fatal(err)
		}
		if got != deque.KindRelaxed {
			t.Fatalf("empty flag with %s=relaxed = %v, want relaxed", deque.EngineEnv, got)
		}
	})
}

// TestSummaryLineReportsEngine pins that the run summary names the active
// engine, so logged runs are attributable to the deque they used.
func TestSummaryLineReportsEngine(t *testing.T) {
	res := &sim.Results{EndTimeUS: 1_500_000, Events: 42, CoreBusyUS: []int64{1_000_000}}
	line := summaryLine(sim.DWS, deque.KindRelaxed, 16, 7, res)
	for _, want := range []string{"policy=DWS", "engine=relaxed", "cores=16", "seed=7", "events=42"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary %q missing %q", line, want)
		}
	}
}
