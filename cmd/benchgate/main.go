// benchgate compares a fresh benchmark run against a committed baseline
// and exits non-zero on regressions — the CI tier-2 perf gate.
//
//	benchgate -base BENCH_hotpath.json -cur BENCH_hotpath.ci.json [-ns-tol 0.25]
//
// An entry regresses when its ns/op exceeds the baseline by more than
// -ns-tol (relative), or when its allocs/op exceeds the baseline at all:
// timing is noisy across runners, allocation counts are not. Benchmarks
// present only in the current run pass (new benchmarks need no baseline
// yet); baseline entries missing from the run fail the gate so renames
// cannot silently un-gate themselves.
package main

import (
	"flag"
	"fmt"
	"os"

	"dws/internal/bench"
)

func main() {
	var (
		basePath = flag.String("base", "BENCH_hotpath.json", "committed baseline JSON")
		curPath  = flag.String("cur", "", "fresh benchmark run JSON (required)")
		nsTol    = flag.Float64("ns-tol", 0.25, "relative ns/op tolerance (0.25 = +25%)")
	)
	flag.Parse()
	if *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -cur is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := bench.LoadBenchFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := bench.LoadBenchFile(*curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("benchgate: %s vs %s (ns/op tolerance %+.0f%%, allocs/op tolerance 0)\n\n",
		*basePath, *curPath, 100**nsTol)
	fmt.Print(bench.FormatComparison(base, cur, *nsTol))

	regs, missing := bench.CompareBaseline(base, cur, *nsTol)
	if len(regs) == 0 && len(missing) == 0 {
		fmt.Printf("\nbenchgate: PASS (%d entries gated)\n", len(base.Entries))
		return
	}
	fmt.Println()
	for _, r := range regs {
		fmt.Printf("benchgate: FAIL %s\n", r)
	}
	for _, m := range missing {
		fmt.Printf("benchgate: FAIL %s: missing from current run\n", m)
	}
	os.Exit(1)
}
