// benchgate compares fresh benchmark numbers against committed baselines
// and exits non-zero on regressions — the CI perf gates.
//
// Micro-benchmark mode (the tier-2 hot-path gate):
//
//	benchgate -base BENCH_hotpath.json -cur BENCH_hotpath.ci.json [-ns-tol 0.25]
//
// An entry regresses when its ns/op exceeds the baseline by more than
// -ns-tol (relative), or when its allocs/op exceeds the baseline at all:
// timing is noisy across runners, allocation counts are not. Benchmarks
// present only in the current run pass (new benchmarks need no baseline
// yet); baseline entries missing from the run fail the gate so renames
// cannot silently un-gate themselves.
//
// Scenario mode (the multi-policy comparison gate):
//
//	benchgate -scenarios -base BENCH_scenarios.json [-cur fresh.json] [-sc-tol 0.10]
//	benchgate -scenarios -write BENCH_scenarios.json
//
// The scenario suite replays every catalog scenario (internal/scenario)
// under every policy on the simulator's virtual clock — bit-deterministic,
// so -cur is optional: without it the suite regenerates in-process. The
// gate fails when DWS regresses against the committed baseline (p95,
// makespan, or ok-rate) or loses a previously decisive p95 win over
// another policy. -write regenerates and rewrites the baseline instead of
// gating.
//
// Federation mode (the shard-router spill-over gate):
//
//	benchgate -federation -base BENCH_federation.json
//	benchgate -federation -write BENCH_federation.json
//
// The federation suite replays the federated scenarios across 3 simulated
// shards under every spill policy (no-spill, random, next-preferred),
// also bit-deterministic. The gate fails when any policy's ok-rate drops
// more than two points against the baseline or when the spill-policy
// ranking inverts (spilling must keep beating not spilling on the storm).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dws/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath   = fs.String("base", "BENCH_hotpath.json", "committed baseline JSON")
		curPath    = fs.String("cur", "", "fresh run JSON (required for micro-bench mode; optional for -scenarios)")
		nsTol      = fs.Float64("ns-tol", 0.25, "relative ns/op tolerance (0.25 = +25%)")
		scenarios  = fs.Bool("scenarios", false, "gate the scenario comparison suite instead of micro-benchmarks")
		scTol      = fs.Float64("sc-tol", 0.10, "scenario mode: relative p95/makespan tolerance")
		federation = fs.Bool("federation", false, "gate the federated spill-over suite instead of micro-benchmarks")
		writePath  = fs.String("write", "", "scenario/federation mode: regenerate the suite and write it here instead of gating")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *federation {
		return runFederation(*basePath, *curPath, *writePath, stdout, stderr)
	}
	if *scenarios || *writePath != "" {
		return runScenarios(*basePath, *curPath, *writePath, *scTol, stdout, stderr)
	}
	return runMicro(*basePath, *curPath, *nsTol, fs, stdout, stderr)
}

func runMicro(basePath, curPath string, nsTol float64, fs *flag.FlagSet, stdout, stderr io.Writer) int {
	if curPath == "" {
		fmt.Fprintln(stderr, "benchgate: -cur is required")
		fs.Usage()
		return 2
	}
	base, err := bench.LoadBenchFile(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	cur, err := bench.LoadBenchFile(curPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "benchgate: %s vs %s (ns/op tolerance %+.0f%%, allocs/op tolerance 0)\n\n",
		basePath, curPath, 100*nsTol)
	fmt.Fprint(stdout, bench.FormatComparison(base, cur, nsTol))

	regs, missing := bench.CompareBaseline(base, cur, nsTol)
	if len(regs) == 0 && len(missing) == 0 {
		fmt.Fprintf(stdout, "\nbenchgate: PASS (%d entries gated)\n", len(base.Entries))
		return 0
	}
	fmt.Fprintln(stdout)
	for _, r := range regs {
		fmt.Fprintf(stdout, "benchgate: FAIL %s\n", r)
	}
	for _, m := range missing {
		fmt.Fprintf(stdout, "benchgate: FAIL %s: missing from current run\n", m)
	}
	return 1
}

func runScenarios(basePath, curPath, writePath string, tol float64, stdout, stderr io.Writer) int {
	var cur *bench.ScenarioFile
	var err error
	if curPath != "" {
		cur, err = bench.LoadScenarioFile(curPath)
	} else {
		fmt.Fprintln(stdout, "benchgate: running scenario suite (virtual clock)...")
		cur, err = bench.RunScenarioSuite(nil)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	if writePath != "" {
		if err := bench.WriteScenarioFile(writePath, cur); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, bench.FormatScenarios(cur))
		fmt.Fprintf(stdout, "benchgate: wrote %d results to %s\n", len(cur.Results), writePath)
		return 0
	}

	base, err := bench.LoadScenarioFile(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "benchgate: %s vs current suite (tolerance %+.0f%%)\n\n", basePath, 100*tol)
	fmt.Fprint(stdout, bench.FormatScenarios(cur))

	bad := bench.CompareScenarios(base, cur, tol)
	if len(bad) == 0 {
		fmt.Fprintf(stdout, "\nbenchgate: PASS (%d scenario results gated)\n", len(base.Results))
		return 0
	}
	fmt.Fprintln(stdout)
	for _, v := range bad {
		fmt.Fprintf(stdout, "benchgate: FAIL %s\n", v)
	}
	return 1
}

func runFederation(basePath, curPath, writePath string, stdout, stderr io.Writer) int {
	var cur *bench.FederationFile
	var err error
	if curPath != "" {
		cur, err = bench.LoadFederationFile(curPath)
	} else {
		fmt.Fprintln(stdout, "benchgate: running federation suite (virtual clock)...")
		cur, err = bench.RunFederationSuite(nil)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	if writePath != "" {
		if err := bench.WriteFederationFile(writePath, cur); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, bench.FormatFederation(cur))
		fmt.Fprintf(stdout, "benchgate: wrote %d results to %s\n", len(cur.Results), writePath)
		return 0
	}

	base, err := bench.LoadFederationFile(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "benchgate: %s vs current suite\n\n", basePath)
	fmt.Fprint(stdout, bench.FormatFederation(cur))

	bad := bench.CompareFederation(base, cur)
	if len(bad) == 0 {
		fmt.Fprintf(stdout, "\nbenchgate: PASS (%d federation results gated)\n", len(base.Results))
		return 0
	}
	fmt.Fprintln(stdout)
	for _, v := range bad {
		fmt.Fprintf(stdout, "benchgate: FAIL %s\n", v)
	}
	return 1
}
