package main

import (
	"path/filepath"
	"strings"
	"testing"

	"dws/internal/bench"
	"dws/internal/scenario"
)

func writeSuite(t *testing.T, name string, dwsP95 float64) string {
	t.Helper()
	f := &bench.ScenarioFile{Cores: 16, Policies: []string{"DWS", "ABP"}}
	for _, e := range []struct {
		pol string
		p95 float64
	}{{"DWS", dwsP95}, {"ABP", 100}} {
		f.Results = append(f.Results, &scenario.Result{
			Scenario: "steady", Policy: e.pol, Substrate: "sim",
			Sent: 50, OK: 50,
			Latency:    scenario.LatencyMS{P50: e.p95 / 2, P95: e.p95},
			MakespanMS: 900,
		})
	}
	path := filepath.Join(t.TempDir(), name)
	if err := bench.WriteScenarioFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioGateExitCodes pins the acceptance criterion: a clean run
// passes, a planted 2x DWS p95 regression fails the gate with exit 1.
func TestScenarioGateExitCodes(t *testing.T) {
	base := writeSuite(t, "base.json", 40)
	clean := writeSuite(t, "clean.json", 40)
	planted := writeSuite(t, "planted.json", 80)

	var out, errOut strings.Builder
	if code := run([]string{"-scenarios", "-base", base, "-cur", clean}, &out, &errOut); code != 0 {
		t.Fatalf("clean gate: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("clean gate output missing PASS:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-scenarios", "-base", base, "-cur", planted}, &out, &errOut); code != 1 {
		t.Fatalf("planted regression: exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "p95") {
		t.Fatalf("planted regression output missing FAIL/p95 lines:\n%s", out.String())
	}
}

func writeFedSuite(t *testing.T, name string, nextOK int) string {
	t.Helper()
	f := &bench.FederationFile{Cores: 4, Shards: 3,
		Policies: []string{"no-spill", "random", "next-preferred"}}
	for _, e := range []struct {
		pol string
		ok  int
	}{{"no-spill", 60}, {"random", 70}, {"next-preferred", nextOK}} {
		f.Results = append(f.Results, &scenario.Result{
			Scenario: "storm", Policy: "DWS/" + e.pol, Substrate: "fedsim",
			Sent: 100, OK: e.ok, Rejected: 100 - e.ok,
		})
		f.Spills = append(f.Spills, 10)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := bench.WriteFederationFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFederationGateExitCodes pins the federation acceptance criterion:
// a clean run passes, an inverted spill ranking fails with exit 1.
func TestFederationGateExitCodes(t *testing.T) {
	base := writeFedSuite(t, "base.json", 80)
	clean := writeFedSuite(t, "clean.json", 80)
	inverted := writeFedSuite(t, "inverted.json", 55) // below random's 70

	var out, errOut strings.Builder
	if code := run([]string{"-federation", "-base", base, "-cur", clean}, &out, &errOut); code != 0 {
		t.Fatalf("clean gate: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("clean gate output missing PASS:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-federation", "-base", base, "-cur", inverted}, &out, &errOut); code != 1 {
		t.Fatalf("inverted ranking: exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "ranking") {
		t.Fatalf("inverted ranking output missing FAIL/ranking lines:\n%s", out.String())
	}

	// Missing baseline is a load error.
	out.Reset()
	if code := run([]string{"-federation", "-base", "does-not-exist.json",
		"-cur", clean}, &out, &errOut); code != 2 {
		t.Fatalf("missing federation baseline: exit %d, want 2", code)
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	var out, errOut strings.Builder
	// Micro mode without -cur is a usage error.
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("missing -cur: exit %d, want 2", code)
	}
	// Unreadable baseline in scenario mode is a load error.
	if code := run([]string{"-scenarios", "-base", "does-not-exist.json",
		"-cur", writeSuite(t, "c.json", 40)}, &out, &errOut); code != 2 {
		t.Fatalf("missing baseline: exit %d, want 2", code)
	}
	// Bad flag.
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
