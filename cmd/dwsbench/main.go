// Command dwsbench regenerates every table and figure of the paper's
// evaluation (§4) on the simulator substrate, plus this reproduction's
// ablations and the live-runtime validation.
//
// Usage:
//
//	dwsbench -exp all                 # everything (the EXPERIMENTS.md data)
//	dwsbench -exp fig4                # Fig. 4: mixes under ABP / EP / DWS
//	dwsbench -exp fig5                # Fig. 5: DWS-NC vs DWS
//	dwsbench -exp fig6                # Fig. 6: T_SLEEP sweep on mix (1,8)
//	dwsbench -exp solo                # §4.4: solo overhead of DWS
//	dwsbench -exp coordperiod         # §3.4: coordinator period sweep
//	dwsbench -exp yield               # ablation: weak vs strong ABP yield
//	dwsbench -exp table2              # Table 2: benchmark registry
//	dwsbench -exp live                # real kernels on the live runtime
//
// Simulations are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dws/internal/bench"
	"dws/internal/deque"
)

// engineFromFlag resolves the -engine flag: an empty value falls back to
// DWS_DEQUE_ENGINE and then Chase–Lev; unknown names are rejected before
// any experiment runs.
func engineFromFlag(name string) (deque.Kind, error) {
	k, err := deque.ParseKind(name)
	if err != nil {
		return 0, err
	}
	return k.Resolve()
}

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: all|table2|fig4|fig5|fig6|solo|coordperiod|yield|related|scalem|variance|sensitivity|elastic|sharing|asym|live")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full size)")
		runs   = flag.Int("runs", 4, "completed runs per program (Fig. 3 methodology)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		cores  = flag.Int("cores", 16, "simulated cores")
		format = flag.String("format", "text", "output format: text|csv|json")

		liveCores = flag.Int("live-cores", 8, "core slots for -exp live")
		liveRuns  = flag.Int("live-runs", 3, "runs per program for -exp live")
		liveSize  = flag.Float64("live-size", 0.25, "input scale for -exp live")
		liveA     = flag.Int("live-a", 0, "first live bench index (0=FFT 1=Mergesort 2=Heat 3=Cholesky)")
		liveB     = flag.Int("live-b", 1, "second live bench index")

		engine = flag.String("engine", "", "deque engine: chaselev|locked|relaxed (empty = $DWS_DEQUE_ENGINE, then chaselev)")
	)
	flag.Parse()

	eng, err := engineFromFlag(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwsbench: %v\n", err)
		os.Exit(1)
	}
	// The live experiments build their own rt systems deep inside
	// internal/bench; exporting the resolved engine through the environment
	// reaches them without widening every signature.
	os.Setenv(deque.EngineEnv, eng.String())

	opts := bench.DefaultOptions()
	opts.Cfg.Engine = eng
	opts.Scale = *scale
	opts.TargetRuns = *runs
	opts.Cfg.Seed = *seed
	opts.Cfg.Cores = *cores
	if *cores != 16 {
		opts.Cfg.SocketSize = (*cores + 1) / 2
		opts.Cfg.TSleep = 0 // re-derive as k
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dwsbench: %v\n", err)
		os.Exit(1)
	}
	show := func(t *bench.Table) {
		var err error
		switch strings.ToLower(*format) {
		case "text":
			err = t.Render(os.Stdout)
		case "csv":
			err = t.WriteCSV(os.Stdout, true)
		case "json":
			err = t.WriteJSON(os.Stdout)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fail(err)
		}
	}

	if want("table2") {
		ran = true
		show(bench.Table2())
	}
	if want("fig4") {
		ran = true
		out, err := bench.Fig4(opts)
		if err != nil {
			fail(err)
		}
		show(bench.Fig4Table(out))
	}
	if want("fig5") {
		ran = true
		out, err := bench.Fig5(opts)
		if err != nil {
			fail(err)
		}
		show(bench.Fig5Table(out))
	}
	if want("fig6") {
		ran = true
		rows, err := bench.Fig6(opts)
		if err != nil {
			fail(err)
		}
		show(bench.Fig6Table(rows))
	}
	if want("solo") {
		ran = true
		rows, err := bench.SoloOverhead(opts)
		if err != nil {
			fail(err)
		}
		show(bench.SoloOverheadTable(rows))
	}
	if want("coordperiod") {
		ran = true
		rows, err := bench.CoordPeriod(opts)
		if err != nil {
			fail(err)
		}
		show(bench.CoordPeriodTable(rows))
	}
	if want("yield") {
		ran = true
		rows, err := bench.YieldAblation(opts)
		if err != nil {
			fail(err)
		}
		show(bench.YieldAblationTable(rows))
	}
	if want("related") {
		ran = true
		out, err := bench.RelatedWork(opts)
		if err != nil {
			fail(err)
		}
		show(bench.RelatedWorkTable(out))
	}
	if want("scalem") {
		ran = true
		rows, err := bench.ScaleM(opts)
		if err != nil {
			fail(err)
		}
		show(bench.ScaleMTable(rows))
	}
	if want("sensitivity") {
		ran = true
		rows, names, err := bench.Sensitivity(opts)
		if err != nil {
			fail(err)
		}
		show(bench.SensitivityTable(rows, names))
	}
	if want("variance") {
		ran = true
		rows, names, err := bench.Variance(opts, nil)
		if err != nil {
			fail(err)
		}
		show(bench.VarianceTable(rows, names))
	}
	if want("elastic") {
		ran = true
		rows, names, err := bench.Elasticity(opts)
		if err != nil {
			fail(err)
		}
		show(bench.ElasticityTable(rows, names))
	}
	if want("sharing") {
		ran = true
		rows, err := bench.Sharing(opts)
		if err != nil {
			fail(err)
		}
		show(bench.SharingTable(rows))
	}
	if want("asym") {
		ran = true
		rows, names, err := bench.Asymmetric(opts)
		if err != nil {
			fail(err)
		}
		show(bench.AsymmetricTable(rows, names))
	}
	if want("live") {
		ran = true
		t, err := bench.LiveMixTable(*liveCores, *liveRuns, *liveSize, *liveA, *liveB)
		if err != nil {
			fail(err)
		}
		show(t)
	}
	if !ran {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}
}
