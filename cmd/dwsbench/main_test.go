package main

import (
	"testing"

	"dws/internal/deque"
)

// TestEngineFromFlag pins the -engine flag contract: unknown names are
// rejected before any experiment runs, the empty flag defaults to
// Chase–Lev, and DWS_DEQUE_ENGINE fills in when the flag is unset.
func TestEngineFromFlag(t *testing.T) {
	t.Setenv(deque.EngineEnv, "")
	cases := []struct {
		in      string
		want    deque.Kind
		wantErr bool
	}{
		{"", deque.KindChaseLev, false},
		{"chaselev", deque.KindChaseLev, false},
		{"locked", deque.KindLocked, false},
		{"Relaxed", deque.KindRelaxed, false},
		{"warp-drive", 0, true},
	}
	for _, c := range cases {
		got, err := engineFromFlag(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("engineFromFlag(%q) accepted an unknown engine", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("engineFromFlag(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("engineFromFlag(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	t.Run("env-fallback", func(t *testing.T) {
		t.Setenv(deque.EngineEnv, "relaxed")
		got, err := engineFromFlag("")
		if err != nil {
			t.Fatal(err)
		}
		if got != deque.KindRelaxed {
			t.Fatalf("empty flag with %s=relaxed = %v, want relaxed", deque.EngineEnv, got)
		}
	})
}
