// Command dwsrun co-runs real kernels on the live work-stealing runtime
// and reports per-run wall times and scheduler counters.
//
// Examples:
//
//	dwsrun -a FFT -b Mergesort -policy DWS -cores 8 -runs 3
//	dwsrun -a Heat -policy ABP           # solo
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dws/internal/bench"
	"dws/internal/rt"
	"dws/internal/server"
	"dws/internal/task"
)

// jsonReport is the -json output: one record per run, in the job server's
// wire schema (internal/server), so CLI results and served-load results
// can be compared with the same tooling.
type jsonReport struct {
	Policy string             `json:"policy"`
	Cores  int                `json:"cores"`
	Runs   int                `json:"runs"`
	Size   float64            `json:"size"`
	Jobs   []server.JobResult `json:"jobs"`
}

func main() {
	var (
		aName  = flag.String("a", "FFT", "first benchmark (FFT|Mergesort|Heat|Cholesky)")
		bName  = flag.String("b", "", "second benchmark (empty = run -a solo)")
		policy = flag.String("policy", "DWS", "ABP|EP|DWS|DWS-NC")
		cores  = flag.Int("cores", 8, "core slots (sets GOMAXPROCS)")
		runs   = flag.Int("runs", 3, "runs per program")
		size   = flag.Float64("size", 0.25, "input scale")
		record = flag.Bool("record", false, "record -a's fork-join structure into a task graph and print its metrics instead of running it")
		asJSON = flag.Bool("json", false, "emit machine-readable per-run results (the dwsd wire schema) instead of text")
	)
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	benches := bench.LiveBenches(*size)
	find := func(name string) (bench.LiveBench, error) {
		for _, lb := range benches {
			if strings.EqualFold(lb.Name, name) {
				return lb, nil
			}
		}
		return bench.LiveBench{}, fmt.Errorf("unknown benchmark %q", name)
	}
	a, err := find(*aName)
	if err != nil {
		fatal(err)
	}

	if *record {
		g := rt.RecordGraph(a.Name, 0.5, a.NewTask())
		if err := task.Validate(g); err != nil {
			fatal(err)
		}
		m := task.Analyze(g)
		fmt.Printf("recorded %s: %v\n", a.Name, m)
		return
	}

	if runtime.NumCPU() < 2 {
		fmt.Fprintln(os.Stderr,
			"dwsrun: note: single-CPU host — policy wall-clock differences are not meaningful; use dwsbench for the simulator figures")
	}

	if *bName == "" {
		if err := runSolo(pol, *cores, *runs, *size, a, *asJSON); err != nil {
			fatal(err)
		}
		return
	}
	b, err := find(*bName)
	if err != nil {
		fatal(err)
	}
	res, err := bench.RunLiveMix(pol, *cores, *runs, a, b)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		rep := jsonReport{Policy: pol.String(), Cores: *cores, Runs: *runs, Size: *size}
		for i := 0; i < 2; i++ {
			for r, sec := range res.PerRunSec[i] {
				rep.Jobs = append(rep.Jobs, jobRecord(res.Names[i], pol, *cores, *size,
					sec, res.PerRunStats[i][r]))
			}
		}
		emitJSON(rep)
		return
	}
	fmt.Printf("policy=%v cores=%d runs=%d\n", pol, *cores, *runs)
	for i := 0; i < 2; i++ {
		fmt.Printf("%-10s mean=%.3fs stats=%+v\n", res.Names[i], res.MeanSec[i], res.Stats[i])
	}
}

func runSolo(pol rt.Policy, cores, runs int, size float64, lb bench.LiveBench, asJSON bool) error {
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)
	sys, err := rt.NewSystem(rt.Config{Cores: cores, Programs: 1, Policy: pol})
	if err != nil {
		return err
	}
	defer sys.Close()
	p, err := sys.NewProgram(lb.Name)
	if err != nil {
		return err
	}
	rep := jsonReport{Policy: pol.String(), Cores: cores, Runs: runs, Size: size}
	var total time.Duration
	for r := 0; r < runs; r++ {
		task := lb.NewTask()
		before := p.Stats()
		start := time.Now()
		if err := p.Run(task); err != nil {
			return err
		}
		dur := time.Since(start)
		total += dur
		rep.Jobs = append(rep.Jobs, jobRecord(lb.Name, pol, cores, size,
			dur.Seconds(), statsDelta(p.Stats(), before)))
	}
	if asJSON {
		emitJSON(rep)
		return nil
	}
	fmt.Printf("policy=%v cores=%d %s solo mean=%.3fs stats=%+v\n",
		pol, cores, lb.Name, total.Seconds()/float64(runs), p.Stats())
	return nil
}

// jobRecord shapes one CLI run like one served job (queue wait is zero —
// the CLI has no admission queue).
func jobRecord(name string, pol rt.Policy, cores int, size, sec float64, st rt.Stats) server.JobResult {
	runMS := sec * 1000
	return server.JobResult{
		Tenant:  name,
		Kernel:  name,
		Policy:  pol.String(),
		Cores:   cores,
		Size:    size,
		Status:  server.StatusOK,
		RunMS:   runMS,
		TotalMS: runMS,
		Stats:   server.FromRTStats(st),
	}
}

func statsDelta(a, b rt.Stats) rt.Stats {
	return rt.Stats{
		Steals:       a.Steals - b.Steals,
		FailedSteals: a.FailedSteals - b.FailedSteals,
		Sleeps:       a.Sleeps - b.Sleeps,
		Wakes:        a.Wakes - b.Wakes,
		Evictions:    a.Evictions - b.Evictions,
		Claims:       a.Claims - b.Claims,
		Reclaims:     a.Reclaims - b.Reclaims,
		Runs:         a.Runs - b.Runs,
	}
}

func emitJSON(rep jsonReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func parsePolicy(s string) (rt.Policy, error) {
	return rt.ParsePolicy(s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dwsrun: %v\n", err)
	os.Exit(1)
}
