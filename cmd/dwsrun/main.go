// Command dwsrun co-runs real kernels on the live work-stealing runtime
// and reports per-run wall times and scheduler counters.
//
// Examples:
//
//	dwsrun -a FFT -b Mergesort -policy DWS -cores 8 -runs 3
//	dwsrun -a Heat -policy ABP           # solo
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dws/internal/bench"
	"dws/internal/rt"
	"dws/internal/task"
)

func main() {
	var (
		aName  = flag.String("a", "FFT", "first benchmark (FFT|Mergesort|Heat|Cholesky)")
		bName  = flag.String("b", "", "second benchmark (empty = run -a solo)")
		policy = flag.String("policy", "DWS", "ABP|EP|DWS|DWS-NC")
		cores  = flag.Int("cores", 8, "core slots (sets GOMAXPROCS)")
		runs   = flag.Int("runs", 3, "runs per program")
		size   = flag.Float64("size", 0.25, "input scale")
		record = flag.Bool("record", false, "record -a's fork-join structure into a task graph and print its metrics instead of running it")
	)
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	benches := bench.LiveBenches(*size)
	find := func(name string) (bench.LiveBench, error) {
		for _, lb := range benches {
			if strings.EqualFold(lb.Name, name) {
				return lb, nil
			}
		}
		return bench.LiveBench{}, fmt.Errorf("unknown benchmark %q", name)
	}
	a, err := find(*aName)
	if err != nil {
		fatal(err)
	}

	if *record {
		g := rt.RecordGraph(a.Name, 0.5, a.NewTask())
		if err := task.Validate(g); err != nil {
			fatal(err)
		}
		m := task.Analyze(g)
		fmt.Printf("recorded %s: %v\n", a.Name, m)
		return
	}

	if runtime.NumCPU() < 2 {
		fmt.Fprintln(os.Stderr,
			"dwsrun: note: single-CPU host — policy wall-clock differences are not meaningful; use dwsbench for the simulator figures")
	}

	if *bName == "" {
		if err := runSolo(pol, *cores, *runs, a); err != nil {
			fatal(err)
		}
		return
	}
	b, err := find(*bName)
	if err != nil {
		fatal(err)
	}
	res, err := bench.RunLiveMix(pol, *cores, *runs, a, b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("policy=%v cores=%d runs=%d\n", pol, *cores, *runs)
	for i := 0; i < 2; i++ {
		fmt.Printf("%-10s mean=%.3fs stats=%+v\n", res.Names[i], res.MeanSec[i], res.Stats[i])
	}
}

func runSolo(pol rt.Policy, cores, runs int, lb bench.LiveBench) error {
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)
	sys, err := rt.NewSystem(rt.Config{Cores: cores, Programs: 1, Policy: pol})
	if err != nil {
		return err
	}
	defer sys.Close()
	p, err := sys.NewProgram(lb.Name)
	if err != nil {
		return err
	}
	var total time.Duration
	for r := 0; r < runs; r++ {
		task := lb.NewTask()
		start := time.Now()
		if err := p.Run(task); err != nil {
			return err
		}
		total += time.Since(start)
	}
	fmt.Printf("policy=%v cores=%d %s solo mean=%.3fs stats=%+v\n",
		pol, cores, lb.Name, total.Seconds()/float64(runs), p.Stats())
	return nil
}

func parsePolicy(s string) (rt.Policy, error) {
	switch strings.ToUpper(s) {
	case "ABP":
		return rt.ABP, nil
	case "EP":
		return rt.EP, nil
	case "DWS":
		return rt.DWS, nil
	case "DWS-NC", "DWSNC":
		return rt.DWSNC, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dwsrun: %v\n", err)
	os.Exit(1)
}
