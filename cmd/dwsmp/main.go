//go:build linux || darwin

// Command dwsmp is the multi-process crash-recovery demo: it launches m
// dwsworker processes that cooperate through one mmap-backed core
// allocation table (the paper's §3.4 deployment), SIGKILLs one of them
// mid-run, and reports per-program throughput plus how fast the
// survivors' lease sweepers freed the dead program's cores.
//
//	dwsmp -cores 8 -programs 3 -kernel Mergesort -duration 10s -kill-index 1
//
// By default dwsmp re-execs itself as its workers (no pre-built dwsworker
// binary needed); pass -worker to exec an external dwsworker instead.
// Pass -kill-index -1 to co-run without a crash.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"dws/internal/coretable"
	"dws/internal/mproc"
)

func main() {
	// Worker mode: dwsmp spawned itself with the config in the
	// environment.
	if cfg, ok := mproc.ConfigFromEnv(); ok {
		if err := mproc.RunWorker(cfg); err != nil {
			log.Fatalf("dwsmp worker: %v", err)
		}
		return
	}

	var (
		cores     = flag.Int("cores", 8, "core slots k")
		programs  = flag.Int("programs", 3, "co-running worker processes m")
		kernel    = flag.String("kernel", "Mergesort", "catalog kernel every worker runs")
		size      = flag.Float64("size", 0.25, "kernel input scale")
		duration  = flag.Duration("duration", 10*time.Second, "experiment length")
		killIdx   = flag.Int("kill-index", 0, "worker to SIGKILL mid-run (-1 = none)")
		killAfter = flag.Duration("kill-after", 0, "when to kill (0 = duration/3)")
		period    = flag.Duration("period", 10*time.Millisecond, "coordinator period T")
		ttl       = flag.Duration("ttl", 0, "lease expiry (0 = 10×period)")
		tsleep    = flag.Int("tsleep", 0, "T_SLEEP (0 = cores)")
		tablePath = flag.String("table", "", "table file (default: fresh temp file)")
		workerBin = flag.String("worker", "", "external dwsworker binary (default: re-exec self)")
	)
	flag.Parse()
	if *programs < 2 {
		log.Fatal("dwsmp: need -programs ≥ 2 (a victim and at least one survivor)")
	}
	if *killIdx >= *programs {
		log.Fatalf("dwsmp: -kill-index %d out of range for %d programs", *killIdx, *programs)
	}
	if *killAfter <= 0 {
		*killAfter = *duration / 3
	}
	if *ttl <= 0 {
		*ttl = 10 * *period
	}

	path := *tablePath
	if path == "" {
		dir, err := os.MkdirTemp("", "dwsmp-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "core.table")
	}
	// The launcher is the first opener: it creates the table and observes
	// recovery through its own mapping (it never claims or sweeps).
	table, err := coretable.OpenFile(path, *cores)
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	exe := *workerBin
	selfExec := exe == ""
	if selfExec {
		if exe, err = os.Executable(); err != nil {
			log.Fatal(err)
		}
	}

	var (
		mu      sync.Mutex
		records = make([][]mproc.IterRecord, *programs)
	)
	cmds := make([]*exec.Cmd, *programs)
	var scanWG sync.WaitGroup
	for i := 0; i < *programs; i++ {
		cfg := mproc.WorkerConfig{
			TablePath: path, Cores: *cores, Programs: *programs, Index: i,
			Kernel: *kernel, Size: *size,
			Duration:    *duration + time.Minute, // the launcher ends the run
			CoordPeriod: *period, LeaseTTL: *ttl, TSleep: *tsleep,
		}
		cmd := exec.Command(exe)
		if !selfExec {
			cmd = exec.Command(exe,
				"-table", path, "-cores", fmt.Sprint(*cores),
				"-programs", fmt.Sprint(*programs), "-index", fmt.Sprint(i),
				"-kernel", *kernel, "-size", fmt.Sprint(*size),
				"-duration", (*duration + time.Minute).String(),
				"-period", period.String(), "-ttl", ttl.String(),
				"-tsleep", fmt.Sprint(*tsleep))
		}
		cmd.Env = append(os.Environ(), cfg.Env()...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		cmds[i] = cmd
		scanWG.Add(1)
		go func(i int) {
			defer scanWG.Done()
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				var rec mproc.IterRecord
				if json.Unmarshal(sc.Bytes(), &rec) == nil {
					mu.Lock()
					records[i] = append(records[i], rec)
					mu.Unlock()
				}
			}
		}(i)
	}
	fmt.Printf("dwsmp: %d workers on %d cores, kernel %s size %v, table %s\n",
		*programs, *cores, *kernel, *size, path)

	// Phase 1: co-run, then kill.
	var killTime time.Time
	var recovery time.Duration
	heldAtKill := -1
	if *killIdx >= 0 {
		time.Sleep(*killAfter)
		victim := int32(*killIdx + 1)
		// Kill at a moment the victim demonstrably holds cores, so the
		// crash actually strands an allocation for the survivors to
		// recover (between kernel runs a program may briefly hold none).
		waitHeld := time.Now().Add(*duration)
		for table.CountOccupiedBy(victim) == 0 && time.Now().Before(waitHeld) {
			time.Sleep(time.Millisecond)
		}
		heldAtKill = table.CountOccupiedBy(victim)
		if err := cmds[*killIdx].Process.Kill(); err != nil {
			log.Fatalf("dwsmp: kill worker %d: %v", *killIdx, err)
		}
		killTime = time.Now()
		fmt.Printf("dwsmp: SIGKILLed worker %d at t=%v holding %d cores\n",
			*killIdx, killAfter.Round(time.Millisecond), heldAtKill)
		// Recovery latency: from the kill until no core is occupied by the
		// dead program (survivors swept its lease and freed them).
		for table.CountOccupiedBy(victim) > 0 {
			if time.Since(killTime) > *duration {
				log.Fatalf("dwsmp: cores of dead worker %d not recovered within %v — recovery failed",
					*killIdx, *duration)
			}
			time.Sleep(time.Millisecond)
		}
		recovery = time.Since(killTime)
		fmt.Printf("dwsmp: recovered all %d cores of worker %d in %v (ttl %v, period %v)\n",
			heldAtKill, *killIdx, recovery.Round(time.Millisecond), *ttl, *period)
		_, _ = cmds[*killIdx].Process.Wait()
	}

	// Phase 2: let survivors use the recovered cores, then stop them.
	rest := time.Until(killTime.Add(*duration - *killAfter))
	if *killIdx < 0 {
		rest = *duration
	}
	if rest > 0 {
		time.Sleep(rest)
	}
	for i, cmd := range cmds {
		if i == *killIdx {
			continue
		}
		_ = cmd.Process.Signal(syscall.SIGTERM)
	}
	for i, cmd := range cmds {
		if i == *killIdx {
			continue
		}
		if err := cmd.Wait(); err != nil {
			log.Printf("dwsmp: worker %d: %v", i, err)
		}
	}
	scanWG.Wait()

	// Report: per-program throughput before/after the kill, recovery
	// counters from the survivors' last records.
	fmt.Printf("\n%-8s %8s %12s %12s %12s %12s\n",
		"worker", "iters", "before it/s", "after it/s", "dead_sweeps", "recovered")
	for i := 0; i < *programs; i++ {
		recs := records[i]
		label := fmt.Sprintf("w%d", i)
		if i == *killIdx {
			label += " ✗"
		}
		if len(recs) == 0 {
			fmt.Printf("%-8s %8d\n", label, 0)
			continue
		}
		var before, after int
		for _, r := range recs {
			if killTime.IsZero() || time.UnixMilli(r.UnixMS).Before(killTime) {
				before++
			} else {
				after++
			}
		}
		span := func(n int, d time.Duration) float64 {
			if d <= 0 {
				return 0
			}
			return float64(n) / d.Seconds()
		}
		beforeDur := *killAfter
		afterDur := *duration - *killAfter
		if killTime.IsZero() {
			beforeDur = *duration
			afterDur = 0
		}
		last := recs[len(recs)-1]
		fmt.Printf("%-8s %8d %12.2f %12.2f %12d %12d\n",
			label, len(recs), span(before, beforeDur), span(after, afterDur),
			last.DeadSweeps, last.CoresRecovered)
	}
	if *killIdx >= 0 {
		fmt.Printf("\nrecovery: %d cores freed in %v after SIGKILL — no leak, survivors kept serving\n",
			heldAtKill, recovery.Round(time.Millisecond))
	}
	fmt.Printf("final table: %s\n", table)
}
