// Command dwsrouter is the federation front tier: an HTTP proxy routing
// tenant jobs across N dwsd shards. Tenants are placed by a bounded-load
// consistent-hash ring (sticky: one tenant, one home shard — its WFQ
// history and QoS state live in one place), refusals with a spillable
// reject reason (overload, shed, queue_full) ride over to the tenant's
// next-preferred healthy sibling under a bounded spill budget, and a
// per-shard health prober ejects sick shards from routing until they
// answer probes again.
//
// Endpoints mirror dwsd — POST /v1/jobs, GET /v1/tenants, DELETE
// /v1/tenants/{name}, GET /v1/info, GET /healthz, GET /metrics — plus
// GET /v1/shards for the prober's live view, so existing load generators
// drive the federation as if it were one big dwsd.
//
// Example:
//
//	dwsd -addr :8081 & dwsd -addr :8082 & dwsd -addr :8083 &
//	dwsrouter -addr :8080 \
//	  -shards s0=http://localhost:8081,s1=http://localhost:8082,s2=http://localhost:8083 \
//	  -spill next -spill-budget 2
//	curl -s localhost:8080/v1/jobs -d '{"tenant":"alice","kernel":"FFT"}'
//
// SIGINT/SIGTERM drains gracefully: new jobs get 503, in-flight proxied
// jobs finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dws/internal/router"
)

// parseShards resolves the -shards flag: a comma-separated list of
// "name=url" members (bare "url" entries get positional names s0, s1, …).
// Names are the ring identity — reusing one is a configuration error, not
// a silent overwrite.
func parseShards(spec string) ([]router.ShardSpec, error) {
	var out []router.ShardSpec
	seen := map[string]bool{}
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var s router.ShardSpec
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			s = router.ShardSpec{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)}
		} else {
			s = router.ShardSpec{Name: fmt.Sprintf("s%d", i), URL: part}
		}
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("shard %q: want name=url or url", part)
		}
		if !strings.HasPrefix(s.URL, "http://") && !strings.HasPrefix(s.URL, "https://") {
			return nil, fmt.Errorf("shard %q: url must be http(s)", part)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("shard name %q repeats", s.Name)
		}
		seen[s.Name] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, errors.New("-shards lists no members")
	}
	return out, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		shards      = flag.String("shards", "", "comma-separated shard members, name=url or url (required)")
		spill       = flag.String("spill", router.SpillNext, "spill policy on shard refusal: none|random|next")
		spillBudget = flag.Int("spill-budget", 2, "max redirect hops per job")
		replicas    = flag.Int("replicas", 0, "ring vnodes per shard (0 = default 128)")
		loadFactor  = flag.Float64("load-factor", 0, "bounded-load factor c (0 = default 1.25)")
		probePeriod = flag.Duration("probe-period", time.Second, "health probe interval")
		probeTO     = flag.Duration("probe-timeout", 2*time.Second, "health probe round-trip budget")
		ejectAfter  = flag.Int("eject-after", 3, "consecutive probe failures before a shard is ejected")
		readmit     = flag.Int("readmit-after", 2, "consecutive probe successes before an ejected shard rejoins")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()

	specs, err := parseShards(*shards)
	if err != nil {
		log.Fatalf("dwsrouter: %v", err)
	}
	rt, err := router.New(router.Config{
		Shards:       specs,
		Spill:        *spill,
		SpillBudget:  *spillBudget,
		Replicas:     *replicas,
		LoadFactor:   *loadFactor,
		ProbePeriod:  *probePeriod,
		ProbeTimeout: *probeTO,
		EjectAfter:   *ejectAfter,
		ReadmitAfter: *readmit,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatalf("dwsrouter: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("dwsrouter: serving on %s (shards=%d spill=%s budget=%d probe=%v)",
		*addr, len(specs), *spill, *spillBudget, *probePeriod)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("dwsrouter: %v", err)
	case sig := <-sigCh:
		log.Printf("dwsrouter: %v — draining (budget %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		log.Printf("dwsrouter: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dwsrouter: http shutdown: %v", err)
	}
	fmt.Println("dwsrouter: drained, bye")
}
