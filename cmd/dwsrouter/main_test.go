package main

import (
	"testing"
)

// TestParseShards pins the -shards flag grammar: named members, bare
// URLs with positional names, rejection of junk and duplicate names.
func TestParseShards(t *testing.T) {
	got, err := parseShards("a=http://h1:1,b=http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].URL != "http://h2:2" {
		t.Fatalf("named parse: %+v", got)
	}

	got, err = parseShards("http://h1:1, http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Name != "s0" || got[1].Name != "s1" {
		t.Fatalf("positional names: %+v", got)
	}

	got, err = parseShards("core=https://h3:3,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "core" {
		t.Fatalf("trailing comma: %+v", got)
	}

	for _, bad := range []string{
		"",
		"   ",
		"a=ftp://nope",
		"=http://h:1",
		"a=",
		"a=http://h:1,a=http://h:2",
		"not a url",
	} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}
