//go:build linux || darwin

// Command dwsworker runs ONE paper-style work-stealing program as a
// standalone OS process. It joins a named mmap-backed core allocation
// table file as program -index of -programs (the §3.4 deployment: the
// first launcher creates the file, later launchers map the same file) and
// runs a catalog kernel back to back, emitting one JSON line per run.
//
// Its coordinator heartbeats a per-program lease in the shared table and
// sweeps expired leases of co-runners, so if a sibling dwsworker dies
// without releasing its cores (kill -9, OOM), this process frees them.
//
// Example — three cooperating programs on one 8-core table:
//
//	dwsworker -table /tmp/dws.table -cores 8 -programs 3 -index 0 -kernel FFT &
//	dwsworker -table /tmp/dws.table -cores 8 -programs 3 -index 1 -kernel Mergesort &
//	dwsworker -table /tmp/dws.table -cores 8 -programs 3 -index 2 -kernel SOR &
//
// SIGTERM/SIGINT exits cleanly (cores released, lease dropped). See
// cmd/dwsmp for a launcher that spawns m workers and demonstrates
// crash recovery by SIGKILLing one.
package main

import (
	"flag"
	"log"
	"time"

	"dws/internal/mproc"
)

func main() {
	var cfg mproc.WorkerConfig
	flag.StringVar(&cfg.TablePath, "table", "", "shared core allocation table file (required)")
	flag.IntVar(&cfg.Cores, "cores", 8, "core slots k (all co-runners must agree; sets GOMAXPROCS)")
	flag.IntVar(&cfg.Programs, "programs", 2, "co-running programs m")
	flag.IntVar(&cfg.Index, "index", 0, "this program's slot in [0, programs)")
	flag.StringVar(&cfg.Kernel, "kernel", "Mergesort", "catalog kernel to run")
	flag.Float64Var(&cfg.Size, "size", 0.25, "kernel input scale")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to run")
	flag.DurationVar(&cfg.CoordPeriod, "period", 0, "coordinator period T (0 = default 10ms)")
	flag.DurationVar(&cfg.LeaseTTL, "ttl", 0, "lease expiry for crash recovery (0 = 10×period)")
	flag.IntVar(&cfg.TSleep, "tsleep", 0, "T_SLEEP failed steals before a worker sleeps (0 = cores)")
	flag.Parse()

	if err := mproc.RunWorker(cfg); err != nil {
		log.Fatalf("dwsworker: %v", err)
	}
}
