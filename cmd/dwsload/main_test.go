package main

import (
	"reflect"
	"testing"
	"time"
)

func TestAdhocSpecCompilesDeterministically(t *testing.T) {
	spec, err := adhocSpec(20, 5*time.Second, "alice=FFT,bob=Mergesort", "alice=2",
		0.1, 200*time.Millisecond, 7, "poisson")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Tenants) != 2 || spec.Tenants[0].Arrival.RateHz != 10 {
		t.Fatalf("rate not split across tenants: %+v", spec.Tenants)
	}
	if spec.Tenants[0].Weight != 2 || spec.Tenants[1].Weight != 0 {
		t.Fatalf("weights not applied: %+v", spec.Tenants)
	}
	if spec.Tenants[0].DeadlineUS != 200_000 {
		t.Fatalf("deadline not applied: %+v", spec.Tenants[0])
	}
	a, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Compile()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed compiled different traces")
	}
	if len(a.Events) < 50 {
		t.Fatalf("20 req/s over 5s produced only %d events", len(a.Events))
	}
	spec.Seed = 8
	c, _ := spec.Compile()
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds compiled identical Poisson arrivals")
	}
}

func TestAdhocSpecRejects(t *testing.T) {
	cases := []struct {
		rate    float64
		dur     time.Duration
		tenants string
		weights string
		arrival string
	}{
		{0, time.Second, "a=FFT", "", "poisson"},
		{10, 0, "a=FFT", "", "poisson"},
		{10, time.Second, "", "", "poisson"},
		{10, time.Second, "nokernel", "", "poisson"},
		{10, time.Second, "a=FFT", "a=-1", "poisson"},
		{10, time.Second, "a=FFT", "broken", "poisson"},
		{10, time.Second, "a=FFT", "", "zipf"},
	}
	for i, c := range cases {
		if _, err := adhocSpec(c.rate, c.dur, c.tenants, c.weights, 0.1, 0, 1, c.arrival); err == nil {
			t.Errorf("case %d: bad flags accepted", i)
		}
	}
}
