// Command dwsload is an open-loop load generator for dwsd, built on the
// scenario engine (internal/scenario): every mode compiles or loads a
// trace and replays it with the live runner, so ad-hoc load, catalog
// scenarios, and recorded traces all share one execution path and one
// report.
//
// Ad-hoc mode generates per-tenant Poisson (or uniform) arrivals from the
// classic flags, deterministically in -seed:
//
//	dwsd -cores 8 -policy DWS &
//	dwsload -rate 20 -duration 15s -tenants alice=FFT,bob=Mergesort -size 0.1 -seed 7
//
// Catalog and replay modes drive the committed comparison scenarios:
//
//	dwsload -scenario bursty-pareto -timescale 1.0
//	dwsload -replay trace.jsonl
//	dwsload -scenario gold-qos -out gold.jsonl   # compile only, no server
//
// The report counts 429 rejections and deadline misses per tenant
// separately from successful-completion latencies, and snapshots the
// server's tenant view (cores held, QoS entitlement, queue depth) so the
// latency split is explainable, not just visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"dws/internal/scenario"
	"dws/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "dwsd (or dwsrouter) base URL")
		shards    = flag.String("shards", "", "comma-separated shard base URLs to drive directly, tenant-sticky (overrides -addr; a dwsrouter front tier needs only -addr)")
		rate      = flag.Float64("rate", 20, "ad-hoc: aggregate submission rate (req/s), split across tenants")
		duration  = flag.Duration("duration", 10*time.Second, "ad-hoc: how long to generate load")
		tenants   = flag.String("tenants", "alice=FFT,bob=Mergesort", "ad-hoc: tenant=kernel pairs")
		size      = flag.Float64("size", 0.1, "ad-hoc: job input scale")
		deadline  = flag.Duration("deadline", 0, "ad-hoc: per-job deadline (0 = server default)")
		weights   = flag.String("weights", "", "ad-hoc: tenant=weight QoS declarations, e.g. gold=2,bronze=1")
		seed      = flag.Int64("seed", 1, "RNG seed for arrivals and sizes (same seed = same trace)")
		arrival   = flag.String("arrival", "poisson", "ad-hoc arrival process: poisson or uniform")
		scName    = flag.String("scenario", "", "replay a catalog scenario by name instead of ad-hoc load (see -list)")
		replay    = flag.String("replay", "", "replay a trace file (.jsonl or .csv) instead of ad-hoc load")
		out       = flag.String("out", "", "write the compiled trace here and exit without replaying")
		timescale = flag.Float64("timescale", 1.0, "trace-time to wall-time ratio (0.5 = replay 2x faster)")
		list      = flag.Bool("list", false, "list catalog scenario names and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range scenario.CatalogNames() {
			fmt.Println(name)
		}
		return
	}
	if *scName != "" && *replay != "" {
		fatal(fmt.Errorf("-scenario and -replay are mutually exclusive"))
	}

	var (
		tr  *scenario.Trace
		err error
	)
	switch {
	case *replay != "":
		tr, err = scenario.LoadFile(*replay)
	case *scName != "":
		var spec scenario.Spec
		spec, err = scenario.SpecByName(*scName)
		if err != nil {
			break
		}
		if *seed != 1 {
			spec.Seed = *seed // override the catalog seed only when asked
		}
		tr, err = spec.Compile()
	default:
		var spec *scenario.Spec
		spec, err = adhocSpec(*rate, *duration, *tenants, *weights, *size, *deadline, *seed, *arrival)
		if err == nil {
			tr, err = spec.Compile()
		}
	}
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := scenario.WriteFile(*out, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("dwsload: wrote %d events (%d tenants) to %s\n",
			len(tr.Events), len(tr.Tenants()), *out)
		return
	}

	var targets []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, u)
		}
	}
	res, err := scenario.RunLive(tr, scenario.LiveOptions{
		BaseURL:   *addr,
		Targets:   targets,
		TimeScale: *timescale,
		Logf: func(format string, args ...any) {
			fmt.Printf("dwsload: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\n%s\n\n", res)
	fmt.Print(res.Table())

	// Snapshot the server-side tenant view (cores held, entitlement, queue
	// depth) so the report shows *why* the latency split looks the way it
	// does, not just the split itself.
	snapURL := *addr
	if len(targets) > 0 {
		snapURL = targets[0] // direct shard mode: snapshot the first shard
	}
	tinfos, err := fetchTenants(snapURL)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwsload: tenant snapshot failed: %v\n", err)
		return
	}
	fmt.Print(snapshotTable(tinfos))
}

// adhocSpec translates the classic dwsload flags into a scenario spec:
// each tenant gets an equal share of the aggregate rate and its own
// seeded arrival stream.
func adhocSpec(rate float64, duration time.Duration, tenants, weights string, size float64, deadline time.Duration, seed int64, arrival string) (*scenario.Spec, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("rate must be positive")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("duration must be positive")
	}
	pairs, err := parseTenants(tenants)
	if err != nil {
		return nil, err
	}
	weightOf, err := parseWeights(weights)
	if err != nil {
		return nil, err
	}
	var kind scenario.ArrivalKind
	switch arrival {
	case "poisson":
		kind = scenario.ArrivePoisson
	case "uniform":
		kind = scenario.ArriveUniform
	default:
		return nil, fmt.Errorf("bad -arrival %q (want poisson or uniform)", arrival)
	}
	spec := &scenario.Spec{
		Name:       "adhoc",
		Seed:       seed,
		DurationUS: duration.Microseconds(),
	}
	for _, p := range pairs {
		spec.Tenants = append(spec.Tenants, scenario.TenantSpec{
			Name:       p[0],
			Kernel:     p[1],
			Arrival:    scenario.Arrival{Kind: kind, RateHz: rate / float64(len(pairs))},
			Size:       scenario.Size{Kind: scenario.SizeFixed, Mean: size},
			DeadlineUS: deadline.Microseconds(),
			Weight:     weightOf[p[0]],
		})
	}
	return spec, nil
}

// snapshotTable renders the end-of-run server tenant view: the core-table
// share each tenant held, the cores the QoS arbiter entitled it to (w=
// prefixes its declared weight; "-" when arbitration is off), the
// admission queue depth left behind, and the tenant's shed / early-reject
// tallies from the WFQ front door.
func snapshotTable(tinfos []server.TenantInfo) string {
	if len(tinfos) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nserver tenant snapshot:\n%-12s %6s %12s %6s %6s %9s\n",
		"tenant", "cores", "entitled", "queue", "shed", "earlyrej")
	for _, ti := range tinfos {
		cores, entitled := "-", "-"
		if ti.CoresHeld >= 0 {
			cores = fmt.Sprintf("%d", ti.CoresHeld)
		}
		if ti.EntitledCores >= 0 {
			entitled = fmt.Sprintf("%d(w=%g)", ti.EntitledCores, ti.Weight)
		}
		fmt.Fprintf(&sb, "%-12s %6s %12s %6d %6d %9d\n",
			ti.Name, cores, entitled, ti.QueueDepth, ti.Shed, ti.EarlyRejected)
	}
	return sb.String()
}

func fetchTenants(addr string) ([]server.TenantInfo, error) {
	resp, err := http.Get(addr + "/v1/tenants")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/tenants: %s", resp.Status)
	}
	var tis []server.TenantInfo
	return tis, json.NewDecoder(resp.Body).Decode(&tis)
}

func parseWeights(s string) (map[string]float64, error) {
	m := make(map[string]float64)
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -weights entry %q (want name=weight)", part)
		}
		var weight float64
		if _, err := fmt.Sscanf(val, "%g", &weight); err != nil || weight <= 0 {
			return nil, fmt.Errorf("bad -weights value %q for %s (want a positive number)", val, name)
		}
		m[name] = weight
	}
	return m, nil
}

func parseTenants(s string) ([][2]string, error) {
	var pairs [][2]string
	for _, part := range strings.Split(s, ",") {
		name, kernel, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || kernel == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want name=kernel)", part)
		}
		pairs = append(pairs, [2]string{name, kernel})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("-tenants must name at least one tenant")
	}
	return pairs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dwsload: %v\n", err)
	os.Exit(1)
}
