// Command dwsload is an open-loop load generator for dwsd: it fires job
// submissions at a fixed aggregate request rate — independent of how fast
// the server answers, the honest way to measure a served system — and
// reports per-tenant and overall throughput, rejection counts, and
// latency percentiles, labeled with the server's scheduling policy.
//
// Example (two co-running tenants, the paper's mix (1, 8), 20 req/s):
//
//	dwsd -cores 8 -policy DWS &
//	dwsload -rate 20 -duration 15s -tenants alice=FFT,bob=Mergesort -size 0.1
//
// Re-run against dwsd -policy ABP (etc.) to compare policies under the
// same served load.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dws/internal/server"
	"dws/internal/stats"
)

type result struct {
	tenant  string
	code    int
	err     bool
	totalMS float64 // client-observed end-to-end latency
	queueMS float64 // server-reported queue wait
	runMS   float64 // server-reported run time
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "dwsd base URL")
		rate     = flag.Float64("rate", 20, "aggregate submission rate (req/s), open loop")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		tenants  = flag.String("tenants", "alice=FFT,bob=Mergesort", "tenant=kernel pairs, round-robin")
		size     = flag.Float64("size", 0.1, "job input scale")
		deadline = flag.Duration("deadline", 0, "per-job deadline (0 = server default)")
		weights  = flag.String("weights", "", "tenant=weight QoS declarations, e.g. gold=2,bronze=1 (sent with every job)")
	)
	flag.Parse()

	pairs, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}
	weightOf, err := parseWeights(*weights)
	if err != nil {
		fatal(err)
	}
	if *rate <= 0 {
		fatal(fmt.Errorf("rate must be positive"))
	}

	info, err := fetchInfo(*addr)
	if err != nil {
		fatal(fmt.Errorf("cannot reach dwsd at %s: %w", *addr, err))
	}
	fmt.Printf("dwsload: %v req/s for %v against %s (policy=%s cores=%d queue=%d)\n",
		*rate, *duration, *addr, info.Policy, info.Cores, info.QueueDepth)

	client := &http.Client{} // per-job deadlines come from the server side
	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(*duration)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []result
	)
	sent := 0
	begin := time.Now()
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			p := pairs[sent%len(pairs)]
			sent++
			wg.Add(1)
			go func(tenant, kernel string) {
				defer wg.Done()
				r := fire(client, *addr, server.JobRequest{
					Tenant:     tenant,
					Kernel:     kernel,
					Size:       *size,
					DeadlineMS: int64(*deadline / time.Millisecond),
					Weight:     weightOf[tenant],
				})
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}(p[0], p[1])
		}
	}
	wg.Wait() // open loop stops *sending*; in-flight jobs still finish
	elapsed := time.Since(begin)

	// Snapshot the server-side tenant view (cores held, entitlement,
	// queue depth) so the report shows *why* the latency split looks the
	// way it does, not just the split itself.
	tinfos, err := fetchTenants(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwsload: tenant snapshot failed: %v\n", err)
	}
	report(os.Stdout, info, pairs, results, tinfos, sent, elapsed)
}

// fire submits one job and classifies the outcome.
func fire(client *http.Client, addr string, req server.JobRequest) result {
	body, _ := json.Marshal(req)
	start := time.Now()
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	r := result{tenant: req.Tenant, totalMS: float64(time.Since(start)) / float64(time.Millisecond)}
	if err != nil {
		r.err = true
		return r
	}
	defer resp.Body.Close()
	r.code = resp.StatusCode
	var res server.JobResult
	if json.NewDecoder(resp.Body).Decode(&res) == nil && resp.StatusCode == http.StatusOK {
		r.queueMS, r.runMS = res.QueueMS, res.RunMS
	}
	io.Copy(io.Discard, resp.Body)
	return r
}

// report renders the per-tenant and overall table. The last three columns
// come from the server's end-of-run tenant snapshot: the core-table share
// the tenant held, the cores the QoS arbiter entitled it to (w= prefixes
// its declared weight; "-" when arbitration is off), and the admission
// queue depth left behind.
func report(w io.Writer, info server.Info, pairs [][2]string, results []result, tinfos []server.TenantInfo, sent int, elapsed time.Duration) {
	kernelOf := make(map[string]string, len(pairs))
	for _, p := range pairs {
		kernelOf[p[0]] = p[1]
	}
	infoOf := make(map[string]server.TenantInfo, len(tinfos))
	for _, ti := range tinfos {
		infoOf[ti.Name] = ti
	}
	byTenant := make(map[string][]result)
	for _, r := range results {
		byTenant[r.tenant] = append(byTenant[r.tenant], r)
	}
	names := make([]string, 0, len(byTenant))
	for n := range byTenant {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "\npolicy=%s elapsed=%.1fs sent=%d (open loop)\n", info.Policy, elapsed.Seconds(), sent)
	fmt.Fprintf(w, "%-10s %-10s %6s %6s %6s %5s %10s %9s %9s %9s %6s %8s %5s\n",
		"tenant", "kernel", "sent", "ok", "429", "other", "thr(job/s)", "p50(ms)", "p95(ms)", "p99(ms)",
		"cores", "entitled", "queue")
	line := func(name, kernel string, rs []result) {
		var ok, rejected, other int
		var lat []float64
		for _, r := range rs {
			switch {
			case r.code == http.StatusOK:
				ok++
				lat = append(lat, r.totalMS)
			case r.code == http.StatusTooManyRequests:
				rejected++
			default:
				other++
			}
		}
		cores, entitled, queue := "-", "-", "-"
		if ti, found := infoOf[name]; found {
			if ti.CoresHeld >= 0 {
				cores = fmt.Sprintf("%d", ti.CoresHeld)
			}
			if ti.EntitledCores >= 0 {
				entitled = fmt.Sprintf("%d(w=%g)", ti.EntitledCores, ti.Weight)
			}
			queue = fmt.Sprintf("%d", ti.QueueDepth)
		}
		fmt.Fprintf(w, "%-10s %-10s %6d %6d %6d %5d %10.2f %9.1f %9.1f %9.1f %6s %8s %5s\n",
			name, kernel, len(rs), ok, rejected, other,
			float64(ok)/elapsed.Seconds(),
			stats.Percentile(lat, 50), stats.Percentile(lat, 95), stats.Percentile(lat, 99),
			cores, entitled, queue)
	}
	var all []result
	for _, name := range names {
		line(name, kernelOf[name], byTenant[name])
		all = append(all, byTenant[name]...)
	}
	line("overall", "-", all)
}

func fetchTenants(addr string) ([]server.TenantInfo, error) {
	resp, err := http.Get(addr + "/v1/tenants")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/tenants: %s", resp.Status)
	}
	var tis []server.TenantInfo
	return tis, json.NewDecoder(resp.Body).Decode(&tis)
}

func fetchInfo(addr string) (server.Info, error) {
	resp, err := http.Get(addr + "/v1/info")
	if err != nil {
		return server.Info{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.Info{}, fmt.Errorf("GET /v1/info: %s", resp.Status)
	}
	var info server.Info
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

func parseWeights(s string) (map[string]float64, error) {
	m := make(map[string]float64)
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -weights entry %q (want name=weight)", part)
		}
		var weight float64
		if _, err := fmt.Sscanf(val, "%g", &weight); err != nil || weight <= 0 {
			return nil, fmt.Errorf("bad -weights value %q for %s (want a positive number)", val, name)
		}
		m[name] = weight
	}
	return m, nil
}

func parseTenants(s string) ([][2]string, error) {
	var pairs [][2]string
	for _, part := range strings.Split(s, ",") {
		name, kernel, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || kernel == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want name=kernel)", part)
		}
		pairs = append(pairs, [2]string{name, kernel})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("-tenants must name at least one tenant")
	}
	return pairs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dwsload: %v\n", err)
	os.Exit(1)
}
