// Corun: the paper's headline experiment in miniature.
//
// Two benchmarks from Table 2 — FFT (p-1, wide parallelism) and Mergesort
// (p-8, narrow merge-bound parallelism) — co-run on the simulated 16-core
// machine under each scheduling policy. The printout shows DWS beating
// the time-sharing ABP baseline and the static EP partition, because
// Mergesort releases the cores its merge phases cannot use and FFT picks
// them up.
//
//	go run ./examples/corun
package main

import (
	"fmt"
	"log"

	"dws"
)

func main() {
	fft, err := dws.WorkloadByID("p-1")
	if err != nil {
		log.Fatal(err)
	}
	ms, err := dws.WorkloadByID("p-8")
	if err != nil {
		log.Fatal(err)
	}

	const scale = 0.5
	fmt.Println("mix (1,8): FFT + Mergesort, 16 simulated cores, 3 runs each")
	fmt.Printf("%-8s %12s %12s\n", "policy", "FFT mean", "Mergesort")
	for _, pol := range []dws.SimPolicy{dws.SimABP, dws.SimEP, dws.SimDWS, dws.SimDWSNC} {
		cfg := dws.DefaultSimConfig()
		cfg.Policy = pol
		m, err := dws.NewSimMachine(cfg, []*dws.Graph{fft.Make(scale), ms.Make(scale)})
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(dws.SimRunOpts{TargetRuns: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.1fms %10.1fms\n", pol,
			res.Programs[0].MeanRunUS()/1000, res.Programs[1].MeanRunUS()/1000)
	}
}
