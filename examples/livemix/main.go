// Livemix: two real computations co-running on the live work-stealing
// runtime inside one process.
//
// A real FFT and a real parallel mergesort (from internal/kernels) share
// 8 core slots under DWS. The printed counters show the space-sharing
// protocol at work: the mergesort's merge phases release slots (Sleeps),
// and both programs claim or reclaim slots through the shared core
// allocation table.
//
//	go run ./examples/livemix
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"dws"
	"dws/internal/bench"
)

func main() {
	runtime.GOMAXPROCS(8)
	sys, err := dws.NewSystem(dws.RuntimeConfig{
		Cores:    8,
		Programs: 2,
		Policy:   dws.PolicyDWS,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	benches := bench.LiveBenches(0.25)
	fft, ms := benches[0], benches[1]

	var wg sync.WaitGroup
	for _, lb := range []bench.LiveBench{fft, ms} {
		prog, err := sys.NewProgram(lb.Name)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(lb bench.LiveBench, prog *dws.Program) {
			defer wg.Done()
			for run := 0; run < 3; run++ {
				task := lb.NewTask()
				start := time.Now()
				if err := prog.Run(task); err != nil {
					log.Printf("%s: %v", lb.Name, err)
					return
				}
				fmt.Printf("%-10s run %d: %v\n", lb.Name, run+1, time.Since(start).Round(time.Millisecond))
			}
			fmt.Printf("%-10s stats: %+v\n", lb.Name, prog.Stats())
		}(lb, prog)
	}
	wg.Wait()
}
