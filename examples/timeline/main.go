// Timeline: watch DWS exchange cores, second by second.
//
// FFT (program 1) and Mergesort (program 2) co-run under DWS on the
// simulated 16-core machine with occupancy sampling on. The printed chart
// has one row per core and one column per 4ms sample: '1' = FFT running,
// '2' = Mergesort, '.' = idle. Mergesort's serial merge phases show up as
// columns where '2' thins out and '1' floods the upper cores — the
// demand-aware exchange in action.
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"

	"dws"
)

func main() {
	fft, err := dws.WorkloadByID("p-1")
	if err != nil {
		log.Fatal(err)
	}
	ms, err := dws.WorkloadByID("p-8")
	if err != nil {
		log.Fatal(err)
	}

	cfg := dws.DefaultSimConfig()
	cfg.Policy = dws.SimDWS
	m, err := dws.NewSimMachine(cfg, []*dws.Graph{fft.Make(0.3), ms.Make(0.3)})
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(dws.SimRunOpts{TargetRuns: 2, SampleUS: 4000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("core occupancy under DWS ('1' FFT, '2' Mergesort, '.' idle):")
	fmt.Print(res.TimelineASCII(110))
	fmt.Printf("\nFFT mean %.0fms, Mergesort mean %.0fms over %.2fs simulated\n",
		res.Programs[0].MeanRunUS()/1000, res.Programs[1].MeanRunUS()/1000,
		float64(res.EndTimeUS)/1e6)
}
