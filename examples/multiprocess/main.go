//go:build linux || darwin

// Multiprocess: the paper's §3.4 implementation detail, live.
//
// "The first-launched work-stealing program creates a new file and maps
// the file into the shared memory using mmap()" — this example launches
// three child processes that coordinate core ownership of an 8-core
// machine purely through the mmap-backed core allocation table, with no
// parent arbitration: each child claims its even home share, then for a
// while releases cores it "cannot use" and claims free ones, exactly the
// moves DWS programs make.
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"dws/internal/coretable"
)

const (
	cores    = 8
	programs = 3
)

func main() {
	if idx := os.Getenv("DWS_CHILD"); idx != "" {
		child(idx)
		return
	}
	parent()
}

func parent() {
	dir, err := os.MkdirTemp("", "dws-table-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "core.table")

	// First-launcher creates the table (children re-open the same file).
	table, err := coretable.OpenFile(path, cores)
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	var cmds []*exec.Cmd
	for i := 0; i < programs; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"DWS_CHILD="+strconv.Itoa(i),
			"DWS_TABLE="+path,
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		cmds = append(cmds, cmd)
	}
	for range cmds {
		fmt.Printf("parent: table now: %s\n", table)
		time.Sleep(40 * time.Millisecond)
	}
	for _, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("child failed: %v", err)
		}
	}
	fmt.Printf("parent: final table: %s\n", table)
	if free := table.FreeCores(); len(free) != cores {
		log.Fatalf("children exited without releasing all cores: %v", table)
	}
	fmt.Println("parent: all cores released — cross-process protocol OK")
}

func child(idxStr string) {
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		log.Fatal(err)
	}
	table, err := coretable.OpenFile(os.Getenv("DWS_TABLE"), cores)
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	pid := int32(idx + 1)
	rng := rand.New(rand.NewSource(int64(idx) + 1))

	// Take the even home share (§3.1).
	home := coretable.HomeCores(cores, programs, idx)
	owned := map[int]bool{}
	for _, c := range home {
		if table.ClaimFree(c, pid) {
			owned[c] = true
		}
	}
	fmt.Printf("child %d: claimed home %v\n", pid, keys(owned))

	// Demand-driven churn: release something, try to grab something.
	for i := 0; i < 25; i++ {
		if len(owned) > 0 && rng.Intn(2) == 0 {
			for c := range owned {
				if table.Release(c, pid) {
					delete(owned, c)
				}
				break
			}
		} else {
			free := table.FreeCores()
			if len(free) > 0 {
				c := free[rng.Intn(len(free))]
				if table.ClaimFree(c, pid) {
					owned[c] = true
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("child %d: peak-phase cores %v\n", pid, keys(owned))

	// Program exit: release everything.
	for c := range owned {
		table.Release(c, pid)
	}
}

func keys(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j-1] > ks[j]; j-- {
			ks[j-1], ks[j] = ks[j], ks[j-1]
		}
	}
	return ks
}
