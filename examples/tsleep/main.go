// Tsleep: the paper's Fig. 6 sensitivity study in miniature.
//
// Mix (1,8) runs under DWS with T_SLEEP swept from 1 to 128. Small values
// make workers sleep at the slightest drought (wake churn); large values
// make idle workers hoard their cores with useless steal attempts. The
// best settings sit near k and 2k, as the paper reports.
//
//	go run ./examples/tsleep
package main

import (
	"fmt"
	"log"

	"dws"
)

func main() {
	fft, err := dws.WorkloadByID("p-1")
	if err != nil {
		log.Fatal(err)
	}
	ms, err := dws.WorkloadByID("p-8")
	if err != nil {
		log.Fatal(err)
	}

	const scale = 0.5
	fmt.Println("mix (1,8) under DWS, 16 simulated cores (k=16)")
	fmt.Printf("%8s %12s %12s\n", "T_SLEEP", "FFT", "Mergesort")
	for _, ts := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := dws.DefaultSimConfig()
		cfg.Policy = dws.SimDWS
		cfg.TSleep = ts
		m, err := dws.NewSimMachine(cfg, []*dws.Graph{fft.Make(scale), ms.Make(scale)})
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(dws.SimRunOpts{TargetRuns: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10.1fms %10.1fms\n", ts,
			res.Programs[0].MeanRunUS()/1000, res.Programs[1].MeanRunUS()/1000)
	}
}
