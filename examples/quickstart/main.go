// Quickstart: a minimal fork-join program on the DWS live runtime.
//
// It sorts a slice with a parallel mergesort expressed directly against
// the public Spawn/Sync API, then prints the scheduler counters — watch
// the Sleeps/Wakes columns to see the demand-aware behaviour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dws"
)

func main() {
	sys, err := dws.NewSystem(dws.RuntimeConfig{
		Cores:    8,
		Programs: 1,
		Policy:   dws.PolicyDWS,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	prog, err := sys.NewProgram("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	data := make([]int, 1_000_000)
	for i := range data {
		data[i] = rng.Int()
	}

	if err := prog.Run(parallelSort(data)); err != nil {
		log.Fatal(err)
	}

	if !sort.IntsAreSorted(data) {
		log.Fatal("output is not sorted")
	}
	fmt.Println("sorted 1,000,000 integers")
	fmt.Printf("scheduler stats: %+v\n", prog.Stats())
}

// parallelSort builds a divide-and-conquer sorting task: halves are
// spawned (stealable by other workers), merges are sequential.
func parallelSort(a []int) dws.Task {
	return func(c *dws.Ctx) {
		if len(a) < 50_000 {
			sort.Ints(a)
			return
		}
		mid := len(a) / 2
		left, right := a[:mid], a[mid:]
		c.Spawn(parallelSort(left))
		c.Spawn(parallelSort(right))
		c.Sync()
		merged := make([]int, 0, len(a))
		i, j := 0, 0
		for i < len(left) && j < len(right) {
			if left[i] <= right[j] {
				merged = append(merged, left[i])
				i++
			} else {
				merged = append(merged, right[j])
				j++
			}
		}
		merged = append(merged, left[i:]...)
		merged = append(merged, right[j:]...)
		copy(a, merged)
	}
}
