// Tier-2 perf baseline: a gated generator that runs a fixed battery of
// kernel and deque micro-benchmarks through testing.Benchmark and writes
// the results as BENCH_schedcheck.json, seeding the perf trajectory that
// CI tracks across PRs. It is a no-op test unless BENCH_SCHEDCHECK_OUT
// names an output path:
//
//	BENCH_SCHEDCHECK_OUT=BENCH_schedcheck.json go test -run TestWriteSchedcheckBench .
//
// The battery deliberately uses small fixed problem sizes so one pass
// stays in the seconds range on a 1-core CI runner; the numbers are for
// trend comparison between commits on the same runner class, not for
// absolute claims.
package dws_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dws/internal/deque"
	"dws/internal/kernels"
	"dws/internal/rt"
)

// benchEntry is one benchmark's headline numbers in a stable, diffable
// shape. NsPerOp is the primary trend metric.
type benchEntry struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchFile struct {
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Entries   []benchEntry `json:"entries"`
}

func runEntry(name string, fn func(b *testing.B)) benchEntry {
	r := testing.Benchmark(fn)
	return benchEntry{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// TestWriteSchedcheckBench generates the BENCH_schedcheck.json baseline.
// Gated on BENCH_SCHEDCHECK_OUT so a plain `go test ./...` never pays
// for a benchmark pass.
func TestWriteSchedcheckBench(t *testing.T) {
	out := os.Getenv("BENCH_SCHEDCHECK_OUT")
	if out == "" {
		t.Skip("set BENCH_SCHEDCHECK_OUT=<path> to generate the perf baseline")
	}

	const (
		fftN   = 1 << 12
		sortN  = 1 << 14
		matN   = 64
		heatW  = 128
		heatH  = 128
		heatIt = 20
	)

	battery := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"kernels/fft-seq-4096", func(b *testing.B) {
			src := kernels.RandComplex(fftN, 1)
			buf := make([]complex128, fftN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				kernels.FFTSeq(buf)
			}
		}},
		{"kernels/mergesort-seq-16384", func(b *testing.B) {
			src := kernels.RandSlice(sortN, 1)
			buf := make([]int32, sortN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				kernels.MergesortSeq(buf)
			}
		}},
		{"kernels/cholesky-seq-64", func(b *testing.B) {
			src := kernels.SPDMatrix(matN, 1)
			buf := make([]float64, len(src))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if !kernels.CholeskySeq(buf, matN) {
					b.Fatal("cholesky failed on SPD input")
				}
			}
		}},
		{"kernels/lu-seq-64", func(b *testing.B) {
			src := kernels.DiagonallyDominant(matN, 1)
			buf := make([]float64, len(src))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if !kernels.LUSeq(buf, matN) {
					b.Fatal("lu failed on diagonally dominant input")
				}
			}
		}},
		{"kernels/ge-seq-64", func(b *testing.B) {
			a := kernels.DiagonallyDominant(matN, 1)
			rhs := kernels.RandMatrix(matN, 2)[:matN]
			abuf := make([]float64, len(a))
			bbuf := make([]float64, matN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(abuf, a)
				copy(bbuf, rhs)
				if kernels.GESeq(abuf, bbuf, matN) == nil {
					b.Fatal("ge failed on diagonally dominant input")
				}
			}
		}},
		{"kernels/heat-seq-128x128x20", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := kernels.NewGrid(heatW, heatH)
				b.StartTimer()
				kernels.HeatSeq(g, heatIt)
			}
		}},
		{"kernels/fft-rt-dws-4096", func(b *testing.B) {
			sys, err := rt.NewSystem(rt.Config{
				Cores: 4, Programs: 1, Policy: rt.DWS,
				TSleep: 2, CoordPeriod: 2 * time.Millisecond,
			})
			if err != nil {
				b.Fatalf("NewSystem: %v", err)
			}
			defer sys.Close()
			p, err := sys.NewProgram("bench")
			if err != nil {
				b.Fatalf("NewProgram: %v", err)
			}
			src := kernels.RandComplex(fftN, 1)
			buf := make([]complex128, fftN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if err := p.Run(kernels.FFTTask(buf)); err != nil {
					b.Fatalf("Run: %v", err)
				}
			}
		}},
		{"deque/push-pop", func(b *testing.B) {
			d := deque.New[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Pop()
			}
		}},
		{"deque/push-steal", func(b *testing.B) {
			d := deque.New[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Steal()
			}
		}},
		{"deque/locked-push-pop", func(b *testing.B) {
			d := deque.NewLocked[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Pop()
			}
		}},
	}

	f := benchFile{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bb := range battery {
		e := runEntry(bb.name, bb.fn)
		f.Entries = append(f.Entries, e)
		t.Logf("%-32s %10d iters  %12.1f ns/op  %6d B/op  %4d allocs/op",
			e.Name, e.Iters, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	fmt.Printf("wrote %d benchmark entries to %s\n", len(f.Entries), out)
}
