// Tier-2 perf baselines: gated generators that run a fixed battery of
// kernel, runtime-overhead, and deque micro-benchmarks through
// testing.Benchmark and write the results as committed JSON baselines.
// They are no-op tests unless an output path is named:
//
//	BENCH_SCHEDCHECK_OUT=BENCH_schedcheck.json go test -run TestWriteSchedcheckBench .
//	BENCH_HOTPATH_OUT=BENCH_hotpath.json       go test -run TestWriteHotpathBench .
//
// BENCH_schedcheck.json is the historical core battery (kernels + deque);
// BENCH_hotpath.json adds the rt-overhead benchmarks (the same kernel
// under the live runtime vs sequentially, per policy) and is the baseline
// the CI regression gate (cmd/benchgate) enforces: >25% ns/op or any
// allocs/op increase fails the bench job.
//
// The battery deliberately uses small fixed problem sizes so one pass
// stays in the seconds range on a 1-core CI runner; the numbers are for
// trend comparison between commits on the same runner class, not for
// absolute claims.
package dws_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dws/internal/bench"
	"dws/internal/deque"
	"dws/internal/kernels"
	"dws/internal/rt"
	"dws/internal/topo"
)

const (
	benchFFTN   = 1 << 12
	benchSortN  = 1 << 14
	benchMatN   = 64
	benchHeatW  = 128
	benchHeatH  = 128
	benchHeatIt = 20
)

// runEntry runs one benchmark with allocation reporting (the in-process
// equivalent of -benchmem: testing.Benchmark always samples the allocation
// counters, ReportAllocs makes the intent explicit) and flattens the
// result into the committed JSON shape.
// benchRuns is how many times each entry is measured; the entry records
// the fastest run. Alloc counters are deterministic across runs, but
// ns/op on a shared box is one-sided noise (interference only ever adds
// time), so min-of-N is the stable statistic to gate on.
const benchRuns = 3

func runEntry(name string, fn func(b *testing.B)) bench.BenchEntry {
	var best bench.BenchEntry
	for i := 0; i < benchRuns; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		e := bench.BenchEntry{
			Name:        name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Extra[k] = v
			}
		}
		if i == 0 || e.NsPerOp < best.NsPerOp {
			best = e
		}
	}
	return best
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// rtKernelBench benchmarks one kernel run end-to-end on the live runtime
// under pol: 4 core slots, one program, per-iteration input reset outside
// nothing (the copy is part of the op, exactly like the -seq entries, so
// rt-vs-seq ratios are apples to apples). The engine is pinned to
// Chase–Lev so the committed baseline is independent of DWS_DEQUE_ENGINE;
// rtKernelBenchEngine spells out other engines.
func rtKernelBench(pol rt.Policy, mk func(b *testing.B) (task rt.Task, reset func())) func(b *testing.B) {
	return rtKernelBenchCfg(rt.Config{Policy: pol, Engine: deque.KindChaseLev}, mk)
}

func rtKernelBenchEngine(pol rt.Policy, eng deque.Kind, mk func(b *testing.B) (task rt.Task, reset func())) func(b *testing.B) {
	return rtKernelBenchCfg(rt.Config{Policy: pol, Engine: eng}, mk)
}

// rtKernelBenchCfg fills the fixed 4-core single-program harness around
// cfg's policy/engine/topology choices.
func rtKernelBenchCfg(cfg rt.Config, mk func(b *testing.B) (task rt.Task, reset func())) func(b *testing.B) {
	return func(b *testing.B) {
		cfg.Cores, cfg.Programs = 4, 1
		cfg.TSleep, cfg.CoordPeriod = 2, 2*time.Millisecond
		sys, err := rt.NewSystem(cfg)
		if err != nil {
			b.Fatalf("NewSystem: %v", err)
		}
		defer sys.Close()
		p, err := sys.NewProgram("bench")
		if err != nil {
			b.Fatalf("NewProgram: %v", err)
		}
		task, reset := mk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reset()
			if err := p.Run(task); err != nil {
				b.Fatalf("Run: %v", err)
			}
		}
	}
}

func fftRT(b *testing.B) (rt.Task, func()) {
	src := kernels.RandComplex(benchFFTN, 1)
	buf := make([]complex128, benchFFTN)
	return kernels.FFTTask(buf), func() { copy(buf, src) }
}

func mergesortRT(b *testing.B) (rt.Task, func()) {
	src := kernels.RandSlice(benchSortN, 1)
	buf := make([]int32, benchSortN)
	return kernels.MergesortTask(buf), func() { copy(buf, src) }
}

func choleskyRT(b *testing.B) (rt.Task, func()) {
	src := kernels.SPDMatrix(benchMatN, 1)
	buf := make([]float64, len(src))
	var ok bool
	return kernels.CholeskyTask(buf, benchMatN, &ok), func() { copy(buf, src) }
}

// coreBattery is the historical BENCH_schedcheck.json battery.
func coreBattery() []namedBench {
	return []namedBench{
		{"kernels/fft-seq-4096", func(b *testing.B) {
			src := kernels.RandComplex(benchFFTN, 1)
			buf := make([]complex128, benchFFTN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				kernels.FFTSeq(buf)
			}
		}},
		{"kernels/mergesort-seq-16384", func(b *testing.B) {
			src := kernels.RandSlice(benchSortN, 1)
			buf := make([]int32, benchSortN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				kernels.MergesortSeq(buf)
			}
		}},
		{"kernels/cholesky-seq-64", func(b *testing.B) {
			src := kernels.SPDMatrix(benchMatN, 1)
			buf := make([]float64, len(src))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if !kernels.CholeskySeq(buf, benchMatN) {
					b.Fatal("cholesky failed on SPD input")
				}
			}
		}},
		{"kernels/lu-seq-64", func(b *testing.B) {
			src := kernels.DiagonallyDominant(benchMatN, 1)
			buf := make([]float64, len(src))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if !kernels.LUSeq(buf, benchMatN) {
					b.Fatal("lu failed on diagonally dominant input")
				}
			}
		}},
		{"kernels/ge-seq-64", func(b *testing.B) {
			a := kernels.DiagonallyDominant(benchMatN, 1)
			rhs := kernels.RandMatrix(benchMatN, 2)[:benchMatN]
			abuf := make([]float64, len(a))
			bbuf := make([]float64, benchMatN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(abuf, a)
				copy(bbuf, rhs)
				if kernels.GESeq(abuf, bbuf, benchMatN) == nil {
					b.Fatal("ge failed on diagonally dominant input")
				}
			}
		}},
		{"kernels/heat-seq-128x128x20", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := kernels.NewGrid(benchHeatW, benchHeatH)
				b.StartTimer()
				kernels.HeatSeq(g, benchHeatIt)
			}
		}},
		{"kernels/fft-rt-dws-4096", rtKernelBench(rt.DWS, fftRT)},
		{"deque/push-pop", func(b *testing.B) {
			d := deque.New[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Pop()
			}
		}},
		{"deque/push-steal", func(b *testing.B) {
			d := deque.New[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Steal()
			}
		}},
		{"deque/locked-push-pop", func(b *testing.B) {
			d := deque.NewLocked[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Pop()
			}
		}},
	}
}

// hotpathBattery is the rt-overhead extension: three kernels end-to-end on
// the live runtime under DWS and ABP (fft-rt-dws already sits in the core
// battery), plus the per-engine deque micro-benchmarks. Comparing each
// kernel entry against its -seq sibling isolates the scheduling overhead
// the paper claims is small; the steal-heavy chaselev/relaxed pair is the
// committed comparison benchgate watches to judge whether the fence-free
// engine's cheaper Steal (plain store vs CAS) pays off where thieves
// dominate.
func hotpathBattery() []namedBench {
	// stealHeavy drains a full batch through Steal per op — the thief-side
	// path only — so the engines' steal costs dominate the measurement.
	const stealBatch = 256
	stealHeavy := func(d deque.Engine[int]) func(b *testing.B) {
		return func(b *testing.B) {
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < stealBatch; j++ {
					d.Push(&v)
				}
				for j := 0; j < stealBatch; j++ {
					if d.Steal() == nil {
						b.Fatal("single-threaded steal lost an element")
					}
				}
			}
		}
	}
	// contendedSteal pits nThieves live steal loops against one owner
	// cycling a fixed batch through Push/Pop — the N-thieves-vs-one-owner
	// shape two-phase victim selection concentrates on a loaded socket's
	// deques. Elements carry their slot index; an epoch-stamped claim
	// array separates unique hand-outs from duplicates, so the relaxed
	// engine's multiplicity cost surfaces as the (ungated, informational)
	// dups/op metric while ns/op per drained batch stays the gated number.
	// Strict Chase–Lev must report dups/op = 0.
	const contThieves = 3
	const contBatch = 256
	contendedSteal := func(kind deque.Kind) func(b *testing.B) {
		return func(b *testing.B) {
			d := deque.NewEngine[int](kind, contBatch)
			ids := make([]int, contBatch)
			claims := make([]atomic.Int64, contBatch)
			for j := range ids {
				ids[j] = j
			}
			var epoch, taken, dups atomic.Int64
			// consume claims one hand-out: the first claim of a slot per
			// epoch is unique, every other is a duplicate. The CAS retry
			// loop is bounded (claims only ever advance toward the current
			// epoch) and keeps the owner's drain condition live even when
			// stale relaxed-engine hand-outs race a fresh one.
			consume := func(p *int) bool {
				if p == nil {
					return false
				}
				for {
					e := epoch.Load()
					prev := claims[*p].Load()
					if prev >= e {
						dups.Add(1)
						return true
					}
					if claims[*p].CompareAndSwap(prev, e) {
						taken.Add(1)
						return true
					}
				}
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			for t := 0; t < contThieves; t++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						if !consume(d.Steal()) {
							runtime.Gosched()
						}
					}
				}()
			}
			var goal int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				epoch.Add(1)
				goal += contBatch
				for j := range ids {
					d.Push(&ids[j])
				}
				for taken.Load() < goal {
					if !consume(d.Pop()) {
						runtime.Gosched()
					}
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			b.ReportMetric(float64(dups.Load())/float64(b.N), "dups/op")
		}
	}
	return []namedBench{
		{"kernels/fft-rt-abp-4096", rtKernelBench(rt.ABP, fftRT)},
		{"kernels/mergesort-rt-dws-16384", rtKernelBench(rt.DWS, mergesortRT)},
		{"kernels/mergesort-rt-abp-16384", rtKernelBench(rt.ABP, mergesortRT)},
		{"kernels/cholesky-rt-dws-64", rtKernelBench(rt.DWS, choleskyRT)},
		{"kernels/cholesky-rt-abp-64", rtKernelBench(rt.ABP, choleskyRT)},
		{"deque/relaxed-push-pop", func(b *testing.B) {
			d := deque.NewRelaxed[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Pop()
			}
		}},
		{"deque/relaxed-push-steal", func(b *testing.B) {
			d := deque.NewRelaxed[int](8)
			v := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Steal()
			}
		}},
		{"deque/steal-heavy-chaselev", stealHeavy(deque.New[int](stealBatch))},
		{"deque/steal-heavy-relaxed", stealHeavy(deque.NewRelaxed[int](stealBatch))},
		{"deque/contended-steal-chaselev", contendedSteal(deque.KindChaseLev)},
		{"deque/contended-steal-relaxed", contendedSteal(deque.KindRelaxed)},
		{"kernels/fft-rt-dws-relaxed-4096", rtKernelBenchEngine(rt.DWS, deque.KindRelaxed, fftRT)},
		// The socket twin of fft-rt-dws-4096: same kernel, same machine,
		// but with 2-core sockets so placement and two-phase victim
		// selection are live. Gating it next to the flat entry keeps the
		// locality path honest — it must stay alloc-identical (the victim
		// order is precomputed per worker) and within the ns/op tolerance.
		{"kernels/fft-rt-dws-socket-4096", rtKernelBenchCfg(rt.Config{
			Policy: rt.DWS, Engine: deque.KindChaseLev, Topology: topo.Uniform(4, 2),
		}, fftRT)},
	}
}

func writeBattery(t *testing.T, out string, battery []namedBench) {
	f := &bench.BenchFile{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bb := range battery {
		e := runEntry(bb.name, bb.fn)
		f.Entries = append(f.Entries, e)
		t.Logf("%-34s %10d iters  %12.1f ns/op  %6d B/op  %4d allocs/op",
			e.Name, e.Iters, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	if err := bench.WriteBenchFile(out, f); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	fmt.Printf("wrote %d benchmark entries to %s\n", len(f.Entries), out)
}

// TestWriteSchedcheckBench generates the historical BENCH_schedcheck.json
// battery. Gated on BENCH_SCHEDCHECK_OUT so a plain `go test ./...` never
// pays for a benchmark pass.
func TestWriteSchedcheckBench(t *testing.T) {
	out := os.Getenv("BENCH_SCHEDCHECK_OUT")
	if out == "" {
		t.Skip("set BENCH_SCHEDCHECK_OUT=<path> to generate the perf baseline")
	}
	writeBattery(t, out, coreBattery())
}

// TestWriteHotpathBench generates BENCH_hotpath.json — the core battery
// plus the rt-overhead benchmarks — which the CI bench job regenerates
// and gates against the committed copy via cmd/benchgate.
func TestWriteHotpathBench(t *testing.T) {
	out := os.Getenv("BENCH_HOTPATH_OUT")
	if out == "" {
		t.Skip("set BENCH_HOTPATH_OUT=<path> to generate the hotpath baseline")
	}
	writeBattery(t, out, append(coreBattery(), hotpathBattery()...))
}

// treeTask builds a shared binary spawn tree of the given depth (2^(d+1)−1
// task executions) out of closures constructed once, so repeated runs
// allocate nothing in user code and any allocation the measurement sees
// belongs to the runtime.
func treeTask(depth int, leaves *atomic.Int64) rt.Task {
	if depth == 0 {
		return func(*rt.Ctx) { leaves.Add(1) }
	}
	child := treeTask(depth-1, leaves)
	return func(c *rt.Ctx) {
		c.Spawn(child)
		c.Spawn(child)
		c.Sync()
	}
}

// TestSpawnExecuteSteadyStateZeroAlloc proves the per-task hot path is
// steady-state allocation-free: once the free-lists are warm, a run's
// allocation count is a small constant (root frame, done channel, root
// node, Run's ticker) regardless of how many tasks the run spawns. A
// depth-9 tree executes 992 more tasks than a depth-4 tree; if Spawn or
// execute allocated per task, the delta would be ≥ 992 allocs/run.
func TestSpawnExecuteSteadyStateZeroAlloc(t *testing.T) {
	sys, err := rt.NewSystem(rt.Config{Cores: 4, Programs: 1, Policy: rt.ABP})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	p, err := sys.NewProgram("alloc")
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}

	var leaves atomic.Int64
	shallow := treeTask(4, &leaves) // 31 tasks
	deep := treeTask(9, &leaves)    // 1023 tasks

	measure := func(task rt.Task) float64 {
		// Warm every worker's free-lists (across runs all four workers
		// end up executing tasks) before measuring.
		for i := 0; i < 50; i++ {
			if err := p.Run(task); err != nil {
				t.Fatalf("warmup Run: %v", err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			if err := p.Run(task); err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}

	aShallow := measure(shallow)
	aDeep := measure(deep)
	t.Logf("allocs/run: depth-4 (31 tasks) = %.1f, depth-9 (1023 tasks) = %.1f", aShallow, aDeep)

	// Per-run constant overhead only: generous bound, but a per-task
	// allocation would blow through it by orders of magnitude.
	if aDeep > 40 {
		t.Errorf("deep run allocates %.1f allocs/run, want ≤ 40 (per-task allocation leak?)", aDeep)
	}
	// The real zero-alloc proof: 992 extra task executions must not add
	// allocations beyond pool-warmup jitter.
	if diff := aDeep - aShallow; diff > 8 {
		t.Errorf("992 extra tasks added %.1f allocs/run, want ≤ 8: Spawn/execute is not zero-alloc", diff)
	}
}
