// Package dws reproduces "DWS: Demand-aware Work-Stealing in
// Multi-programmed Multi-core Architectures" (Chen, Zheng, Guo — PMAM /
// PPoPP 2014) as a Go library.
//
// DWS is a work-stealing task scheduler for machines running several
// parallel programs at once. Instead of every program greedily running a
// worker on every core (and thrashing each other via the OS time-sharer),
// DWS programs space-share: cores start evenly partitioned, a worker that
// cannot find work goes to sleep and releases its core into a shared
// core allocation table, and a per-program coordinator wakes workers onto
// free (or reclaimed home) cores when the program's task queues grow.
//
// The package exposes the reproduction's two substrates:
//
//   - the deterministic machine simulator (NewSimMachine), on which every
//     figure and table of the paper's evaluation is regenerated — see
//     internal/bench and the dwsbench command;
//   - the live runtime (NewSystem), a real goroutine-based work-stealing
//     scheduler with the same policies, used by the example applications
//     and the real-kernel benchmarks.
//
// Quick start (live runtime):
//
//	sys, _ := dws.NewSystem(dws.RuntimeConfig{Cores: 8, Programs: 1, Policy: dws.PolicyDWS})
//	defer sys.Close()
//	prog, _ := sys.NewProgram("mine")
//	prog.Run(func(c *dws.Ctx) {
//	    c.Spawn(func(*dws.Ctx) { /* left half */ })
//	    c.Spawn(func(*dws.Ctx) { /* right half */ })
//	    c.Sync()
//	})
//
// Quick start (simulator):
//
//	cfg := dws.DefaultSimConfig()
//	cfg.Policy = dws.SimDWS
//	m, _ := dws.NewSimMachine(cfg, []*dws.Graph{dws.Workloads()[0].Make(1.0)})
//	res, _ := m.Run(dws.SimRunOpts{TargetRuns: 4})
//	fmt.Println(res)
package dws

import (
	"dws/internal/rt"
	"dws/internal/sim"
	"dws/internal/task"
	"dws/internal/workload"
)

// Simulator API -------------------------------------------------------

// SimConfig configures the deterministic machine simulator.
type SimConfig = sim.Config

// SimPolicy selects a simulated scheduling policy.
type SimPolicy = sim.Policy

// Simulated policies.
const (
	SimABP   = sim.ABP
	SimEP    = sim.EP
	SimDWS   = sim.DWS
	SimDWSNC = sim.DWSNC
	SimBWS   = sim.BWS
)

// SimMachine is a deterministic multi-programmed machine simulation.
type SimMachine = sim.Machine

// SimRunOpts controls a simulation run.
type SimRunOpts = sim.RunOpts

// SimResults is a simulation outcome.
type SimResults = sim.Results

// DefaultSimConfig returns the 16-core configuration used for the paper's
// reproduction.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// NewSimMachine builds a simulated machine co-running one work-stealing
// program per graph.
func NewSimMachine(cfg SimConfig, graphs []*Graph) (*SimMachine, error) {
	return sim.NewMachine(cfg, graphs)
}

// Task-graph API ------------------------------------------------------

// Graph is a fork-join task graph (a workload description for the
// simulator).
type Graph = task.Graph

// Node is one task of a Graph.
type Node = task.Node

// Benchmark is a generator for one of the paper's Table 2 workloads.
type Benchmark = workload.Benchmark

// Workloads returns the paper's eight benchmarks in Table 2 order.
func Workloads() []Benchmark { return workload.Registry }

// WorkloadByID returns a Table 2 benchmark by its paper ID ("p-1".."p-8").
func WorkloadByID(id string) (Benchmark, error) { return workload.ByID(id) }

// Live-runtime API ----------------------------------------------------

// RuntimeConfig configures the live goroutine-based runtime.
type RuntimeConfig = rt.Config

// Policy selects a live-runtime scheduling policy.
type Policy = rt.Policy

// Live-runtime policies.
const (
	PolicyABP   = rt.ABP
	PolicyEP    = rt.EP
	PolicyDWS   = rt.DWS
	PolicyDWSNC = rt.DWSNC
)

// System is a live in-process machine: core slots shared by programs.
type System = rt.System

// Program is one live work-stealing program.
type Program = rt.Program

// Ctx is the fork-join context passed to live tasks.
type Ctx = rt.Ctx

// Task is one unit of live fork-join work.
type Task = rt.Task

// Stats is a snapshot of a live program's scheduler counters.
type Stats = rt.Stats

// NewSystem creates a live system hosting cfg.Programs co-running
// programs on cfg.Cores core slots.
func NewSystem(cfg RuntimeConfig) (*System, error) { return rt.NewSystem(cfg) }

// ParallelFor executes fn over disjoint chunks of [0, n) in parallel and
// joins them — the cilk_for idiom on the live runtime. grain ≤ 0 picks a
// chunk size automatically.
func ParallelFor(c *Ctx, n, grain int, fn func(lo, hi int)) {
	rt.ParallelFor(c, n, grain, fn)
}

// ParallelReduce computes fn over disjoint chunks of [0, n) in parallel
// and folds the partial results with merge (which must be associative).
func ParallelReduce[T any](c *Ctx, n, grain int, fn func(lo, hi int) T, merge func(a, b T) T) T {
	return rt.ParallelReduce(c, n, grain, fn, merge)
}

// RecordGraph executes root sequentially while recording its fork-join
// structure and serial-section durations, producing a Graph the simulator
// can run — the bridge from real code to simulated workloads.
func RecordGraph(name string, memIntensity float64, root Task) *Graph {
	return rt.RecordGraph(name, memIntensity, root)
}
