module dws

go 1.22
