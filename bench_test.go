// Benchmarks regenerating the paper's tables and figures — one testing.B
// benchmark per table/figure, each reporting the headline statistic of
// its experiment as a custom metric. Run with:
//
//	go test -bench=. -benchmem
//
// Workloads run at reduced scale here so a full -bench=. pass stays
// quick; cmd/dwsbench regenerates the full-scale numbers recorded in
// EXPERIMENTS.md.
package dws_test

import (
	"testing"

	"dws/internal/bench"
	"dws/internal/rt"
	"dws/internal/sim"
	"dws/internal/stats"
)

// benchOptions returns reduced-scale options keyed off the -benchtime
// budget.
func benchOptions() bench.Options {
	opts := bench.DefaultOptions()
	opts.Scale = 0.5
	opts.TargetRuns = 3
	return opts
}

// BenchmarkTable2 renders the benchmark registry (Table 2).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := bench.Table2(); len(tb.Rows) != 8 {
			b.Fatal("registry incomplete")
		}
	}
}

// BenchmarkFig4 reproduces Fig. 4 (mixes under ABP / EP / DWS) and
// reports DWS's maximum execution-time reduction vs both baselines.
func BenchmarkFig4(b *testing.B) {
	opts := benchOptions()
	var vsABP, vsEP float64
	for i := 0; i < b.N; i++ {
		outcomes, err := bench.Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		vsABP, vsEP = 0, 0
		for _, o := range outcomes {
			for p := 0; p < 2; p++ {
				if g := stats.Improvement(o.MeanUS[sim.ABP][p], o.MeanUS[sim.DWS][p]); g > vsABP {
					vsABP = g
				}
				if g := stats.Improvement(o.MeanUS[sim.EP][p], o.MeanUS[sim.DWS][p]); g > vsEP {
					vsEP = g
				}
			}
		}
	}
	b.ReportMetric(100*vsABP, "maxgain_vs_ABP_%")
	b.ReportMetric(100*vsEP, "maxgain_vs_EP_%")
}

// BenchmarkFig5 reproduces Fig. 5 (DWS-NC vs DWS) and reports the share
// of program instances where the coordinator helps.
func BenchmarkFig5(b *testing.B) {
	opts := benchOptions()
	var frac float64
	for i := 0; i < b.N; i++ {
		outcomes, err := bench.Fig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		worse, total := 0, 0
		for _, o := range outcomes {
			for p := 0; p < 2; p++ {
				total++
				if o.MeanUS[sim.DWSNC][p] > o.MeanUS[sim.DWS][p] {
					worse++
				}
			}
		}
		frac = float64(worse) / float64(total)
	}
	b.ReportMetric(100*frac, "DWSNC_worse_%")
}

// BenchmarkFig6 reproduces Fig. 6 (T_SLEEP sweep on mix (1,8)) and
// reports the best T_SLEEP found.
func BenchmarkFig6(b *testing.B) {
	opts := benchOptions()
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(opts)
		if err != nil {
			b.Fatal(err)
		}
		bestSum := 0.0
		for _, r := range rows {
			sum := r.MeanUS[0] + r.MeanUS[1]
			if bestSum == 0 || sum < bestSum {
				bestSum = sum
				best = float64(r.TSleep)
			}
		}
	}
	b.ReportMetric(best, "best_T_SLEEP")
}

// BenchmarkSoloOverhead reproduces the §4.4 check and reports the worst
// DWS/plain ratio across the eight benchmarks.
func BenchmarkSoloOverhead(b *testing.B) {
	opts := benchOptions()
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.SoloOverhead(opts)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if rel := r.DWSUS / r.PlainUS; rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst, "worst_DWS/plain")
}

// BenchmarkCoordPeriod reproduces the §3.4 coordinator-period ablation.
func BenchmarkCoordPeriod(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := bench.CoordPeriod(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldAblation contrasts weak and strong ABP yields.
func BenchmarkYieldAblation(b *testing.B) {
	opts := benchOptions()
	opts.Scale = 0.3
	for i := 0; i < b.N; i++ {
		if _, err := bench.YieldAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveMix co-runs two real kernels on the live runtime (the
// mechanics validation; wall-clock policy differences require a
// multi-core host).
func BenchmarkLiveMix(b *testing.B) {
	benches := bench.LiveBenches(0.05)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunLiveMix(rt.DWS, 4, 1, benches[0], benches[1]); err != nil {
			b.Fatal(err)
		}
	}
}
